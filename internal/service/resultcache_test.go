// Result-cache suite: repeated identical requests are served from cached
// bytes without consuming an admission grant; generation bumps invalidate;
// the byte budget evicts LRU. Runs under -race via `go test -race
// ./internal/...`.
package service_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"matstore"
	"matstore/internal/service"
	"matstore/internal/tpch"
)

func selQuery(bound int64) matstore.Query {
	return matstore.Query{
		Output: []string{tpch.ColShipdate, tpch.ColLinenum},
		Filters: []matstore.Filter{
			{Col: tpch.ColShipdate, Pred: matstore.LessThan(bound)},
		},
	}
}

// TestResultCacheServesRepeatedQuery pins the tentpole contract: the second
// identical query is a result-cache hit that grants zero workers and leaves
// every admission counter untouched, and its payload is byte-identical to
// the executed one.
func TestResultCacheServesRepeatedQuery(t *testing.T) {
	srv := newServer(t, fullConfig(2, 4))
	sess := srv.NewSession()
	ctx := context.Background()

	first, err := sess.Select(ctx, tpch.LineitemProj, selQuery(1200), matstore.LMParallel)
	if err != nil {
		t.Fatal(err)
	}
	if first.Info.ResultCacheHit {
		t.Error("cold query reported a result-cache hit")
	}
	if first.Info.Workers < 1 {
		t.Errorf("cold query granted %d workers", first.Info.Workers)
	}
	before := srv.Stats().Admission

	second, err := sess.Select(ctx, tpch.LineitemProj, selQuery(1200), matstore.LMParallel)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Info.ResultCacheHit {
		t.Fatal("repeated query missed the result cache")
	}
	if second.Info.Workers != 0 {
		t.Errorf("cached response granted %d workers, want 0", second.Info.Workers)
	}
	after := srv.Stats().Admission
	if after.Admitted != before.Admitted || after.WorkersGranted != before.WorkersGranted {
		t.Errorf("cached response went through admission: admitted %d->%d granted %d->%d",
			before.Admitted, after.Admitted, before.WorkersGranted, after.WorkersGranted)
	}
	if !reflect.DeepEqual(first.Res.Columns, second.Res.Columns) ||
		!reflect.DeepEqual(first.Res.Cols, second.Res.Cols) {
		t.Error("cached response differs from executed one")
	}

	// A different bound is a different shape: miss.
	third, err := sess.Select(ctx, tpch.LineitemProj, selQuery(1300), matstore.LMParallel)
	if err != nil {
		t.Fatal(err)
	}
	if third.Info.ResultCacheHit {
		t.Error("different predicate bound hit the result cache")
	}

	st := srv.Stats().ResultCache
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 2 || st.Bytes <= 0 {
		t.Errorf("result cache stats = %+v, want 1 hit, 2 misses, 2 accounted entries", st)
	}
}

// TestResultCacheJoinHit: the same contract through the join path.
func TestResultCacheJoinHit(t *testing.T) {
	srv := newServer(t, fullConfig(2, 4))
	sess := srv.NewSession()
	ctx := context.Background()
	first, err := sess.Join(ctx, tpch.OrdersProj, tpch.CustomerProj, joinReq(), matstore.RightMaterialized)
	if err != nil {
		t.Fatal(err)
	}
	second, err := sess.Join(ctx, tpch.OrdersProj, tpch.CustomerProj, joinReq(), matstore.RightMaterialized)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Info.ResultCacheHit || second.Info.Workers != 0 {
		t.Errorf("repeated join: hit=%v workers=%d, want hit with 0 workers",
			second.Info.ResultCacheHit, second.Info.Workers)
	}
	if !reflect.DeepEqual(first.Res.Cols, second.Res.Cols) {
		t.Error("cached join response differs from executed one")
	}
	if second.Stats.Join.RightBuildTuples != first.Stats.Join.RightBuildTuples {
		t.Error("cached join stats differ from the source run")
	}
}

// TestResultCacheGenerationBump: invalidating a projection drops cached
// results over it (and only it), so the next repeat re-executes fresh data.
func TestResultCacheGenerationBump(t *testing.T) {
	srv := newServer(t, fullConfig(2, 4))
	sess := srv.NewSession()
	ctx := context.Background()
	if _, err := sess.Select(ctx, tpch.LineitemProj, selQuery(1200), matstore.LMParallel); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Join(ctx, tpch.OrdersProj, tpch.CustomerProj, joinReq(), matstore.RightMaterialized); err != nil {
		t.Fatal(err)
	}

	// Bumping customer invalidates the join (it read customer) but not the
	// lineitem selection.
	srv.InvalidateProjection(tpch.CustomerProj)
	out, err := sess.Join(ctx, tpch.OrdersProj, tpch.CustomerProj, joinReq(), matstore.RightMaterialized)
	if err != nil {
		t.Fatal(err)
	}
	if out.Info.ResultCacheHit {
		t.Error("join served stale cached result after invalidation")
	}
	sel, err := sess.Select(ctx, tpch.LineitemProj, selQuery(1200), matstore.LMParallel)
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Info.ResultCacheHit {
		t.Error("unrelated invalidation evicted the lineitem selection")
	}
	if st := srv.Stats().ResultCache; st.Invalidations == 0 {
		t.Errorf("no invalidations recorded: %+v", st)
	}
}

// TestResultCacheEviction: a tiny byte budget evicts LRU entries and never
// exceeds capacity.
func TestResultCacheEviction(t *testing.T) {
	// Big enough for any single response (~20-160 KiB at the test scale) but
	// far smaller than all eight together.
	cfg := fullConfig(2, 4)
	cfg.ResultCacheBytes = 256 << 10
	srv := newServer(t, cfg)
	sess := srv.NewSession()
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		bound := tpch.ShipdateForSelectivity(0.1 * float64(i+1))
		if _, err := sess.Select(ctx, tpch.LineitemProj, selQuery(bound), matstore.LMParallel); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats().ResultCache
	if st.Bytes > st.Capacity {
		t.Errorf("result cache over budget: %d > %d", st.Bytes, st.Capacity)
	}
	if st.Evictions == 0 {
		t.Errorf("8 responses under a 256KiB budget evicted nothing: %+v", st)
	}
	if st.Entries == 0 || st.Entries == 8 {
		t.Errorf("eviction kept %d entries, want some but not all", st.Entries)
	}
}

// TestResultCacheConcurrentRepeats hammers one shape from many goroutines
// under -race: exactly the non-hit requests admit, and every response is
// identical.
func TestResultCacheConcurrentRepeats(t *testing.T) {
	srv := newServer(t, fullConfig(2, 8))
	ctx := context.Background()
	ref, err := srv.NewSession().Select(ctx, tpch.LineitemProj, selQuery(1200), matstore.LMParallel)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := srv.NewSession()
			for i := 0; i < 16; i++ {
				out, err := sess.Select(ctx, tpch.LineitemProj, selQuery(1200), matstore.LMParallel)
				if err != nil {
					errs[w] = err
					return
				}
				if !reflect.DeepEqual(out.Res.Cols, ref.Res.Cols) {
					errs[w] = fmt.Errorf("response %d differs from reference", i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	total := int64(workers*16 + 1)
	if st.Admission.Admitted+st.ResultCache.Hits != total {
		t.Errorf("admitted(%d) + result hits(%d) != requests(%d)",
			st.Admission.Admitted, st.ResultCache.Hits, total)
	}
	if st.ResultCache.Hits == 0 {
		t.Error("no result-cache hits across 128 repeats")
	}
}

// TestCancelledRequestReleasesSlot: a request whose context is cancelled
// never executes, surfaces ctx's error, and leaves the admission gate
// balanced for the next request.
func TestCancelledRequestReleasesSlot(t *testing.T) {
	srv := newServer(t, fullConfig(1, 1))
	sess := srv.NewSession()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.Select(ctx, tpch.LineitemProj, selQuery(1200), matstore.LMParallel); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled select returned %v, want context.Canceled", err)
	}
	if _, err := sess.Join(ctx, tpch.OrdersProj, tpch.CustomerProj, joinReq(), matstore.RightMaterialized); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled join returned %v, want context.Canceled", err)
	}
	// The single slot and worker are free: a live request sails through.
	out, err := sess.Select(context.Background(), tpch.LineitemProj, selQuery(1200), matstore.LMParallel)
	if err != nil {
		t.Fatal(err)
	}
	if out.Info.Workers != 1 {
		t.Errorf("post-cancel request granted %d workers, want 1", out.Info.Workers)
	}
	st := srv.Stats().Admission
	if st.InFlight != 0 || st.WorkersInUse != 0 || st.Admitted != 1 {
		t.Errorf("cancelled requests disturbed the gate: %+v", st)
	}
}

// TestResultCacheCostAdmission pins the cost-aware admission policy: with a
// threshold above every query's modeled cost nothing is cached (repeats
// re-execute and CostSkips counts each refusal); with the threshold below
// the modeled cost — or at the zero default — admission behaves as before
// and the repeat hits.
func TestResultCacheCostAdmission(t *testing.T) {
	ctx := context.Background()
	run := func(srv *service.Server) (cold, warm service.Info) {
		t.Helper()
		sess := srv.NewSession()
		first, err := sess.Select(ctx, tpch.LineitemProj, selQuery(1200), matstore.LMParallel)
		if err != nil {
			t.Fatal(err)
		}
		second, err := sess.Select(ctx, tpch.LineitemProj, selQuery(1200), matstore.LMParallel)
		if err != nil {
			t.Fatal(err)
		}
		return first.Info, second.Info
	}

	t.Run("above-threshold-queries-cache", func(t *testing.T) {
		cfg := fullConfig(2, 4)
		cfg.ResultCacheMinCostUS = 1e-9 // below any modeled cost
		srv := newServer(t, cfg)
		cold, warm := run(srv)
		if cold.EstCostUS <= 0 {
			t.Fatalf("query has no modeled cost (%v); threshold test is vacuous", cold.EstCostUS)
		}
		if !warm.ResultCacheHit {
			t.Error("repeat of an above-threshold query missed the cache")
		}
		if st := srv.Stats().ResultCache; st.CostSkips != 0 {
			t.Errorf("cost skips = %d, want 0", st.CostSkips)
		}
	})

	t.Run("below-threshold-queries-skip", func(t *testing.T) {
		cfg := fullConfig(2, 4)
		cfg.ResultCacheMinCostUS = 1e12 // above any modeled cost
		srv := newServer(t, cfg)
		_, warm := run(srv)
		if warm.ResultCacheHit {
			t.Error("below-threshold query was cached despite the cost floor")
		}
		st := srv.Stats().ResultCache
		if st.CostSkips < 2 {
			t.Errorf("cost skips = %d, want one per refused insert (>=2)", st.CostSkips)
		}
		if st.Entries != 0 || st.Bytes != 0 {
			t.Errorf("refused inserts left residue: %+v", st)
		}
	})
}
