// Package service is the concurrent query-serving subsystem layered over
// the matstore engine: it turns the one-query-at-a-time executor of the
// paper reproduction into a server that runs many queries against one DB,
// one buffer pool and one global worker budget at once.
//
// Four cooperating parts:
//
//   - Admission control & worker sharing (admission.go): requests enter
//     through sessions and an admission gate (at most MaxConcurrent in
//     flight; the rest queue), and each admitted query's morsel parallelism
//     is sized from the analytical model's cost estimate (big scans wide,
//     point lookups narrow), clamped so the sum of grants never exceeds the
//     global WorkerBudget. Admission waits are context-aware: a cancelled
//     request leaves the queue immediately.
//   - A result cache (resultcache.go): repeated identical requests are
//     answered from a byte-accounted LRU of served responses without
//     admitting to the worker pool at all, invalidated per projection by
//     generation bumps.
//   - Shared execution caches: a keyed join-build cache
//     (operators.BuildCache) shares partitioned hash sides across queries
//     under a byte budget with LRU eviction and generation invalidation,
//     and a plan cache (plancache.go) skips BuildPlan for repeated query
//     shapes.
//   - A serving front-end (http.go, cmd/csserve): HTTP JSON endpoints
//     /query, /join, /explain and /stats over a Server.
//
// Sharing caches and derating parallelism are pure execution choices — the
// paper's core invariant — so every response is byte-identical to serial
// single-query execution; the concurrent differential suite locks that in.
package service

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"matstore"
	"matstore/internal/buffer"
	"matstore/internal/core"
	"matstore/internal/memory"
	"matstore/internal/obs"
	"matstore/internal/operators"
	"matstore/internal/plan"
	"matstore/internal/storage"
)

// DefaultBuildCacheBytes bounds the join-build cache when Config leaves it 0.
const DefaultBuildCacheBytes = 64 << 20

// DefaultPlanCacheEntries bounds the plan cache when Config leaves it 0.
const DefaultPlanCacheEntries = 256

// DefaultGrantSliceMicros is the modeled-µs-per-worker slice of cost-aware
// grant sizing when Config leaves it 0: a request modeled at N×slice µs asks
// for N workers (clamped to [1, budget]).
const DefaultGrantSliceMicros = 100

// Config tunes a Server.
type Config struct {
	// MaxConcurrent is the admission limit: at most this many requests
	// execute at once, the rest queue. 0 derives 2× the worker budget
	// (enough queueing to keep workers saturated without unbounded pile-up).
	MaxConcurrent int
	// WorkerBudget is the global morsel-worker budget divided across
	// in-flight queries (0 = one per CPU).
	WorkerBudget int
	// BuildCacheBytes bounds the shared join-build cache (0 = the 64 MiB
	// default, negative = cache disabled).
	BuildCacheBytes int64
	// PlanCacheEntries bounds the plan cache (0 = the 256-entry default,
	// negative = cache disabled).
	PlanCacheEntries int
	// ResultCacheBytes bounds the served-response cache (0 = the 32 MiB
	// default, negative = cache disabled).
	ResultCacheBytes int64
	// ResultCacheMinCostUS is the cache's cost-aware admission threshold:
	// only responses whose modeled cost estimate is at least this many µs
	// are cached (0 = cache everything). Cheap queries re-execute faster
	// than their results amortize cache space and evictions.
	ResultCacheMinCostUS float64
	// GrantSliceMicros is the modeled cost (µs) one worker is expected to
	// absorb when sizing admission grants (0 = the 100 µs default, negative
	// = cost-aware sizing disabled; every grant uses the uniform fair share).
	GrantSliceMicros float64
	// MemoryBudgetBytes turns on the byte-budget memory governor: every join
	// reserves its predicted build bytes before admission, runs in Grace
	// spill mode under a smaller reservation when the estimate doesn't fit,
	// queues when the spill grant doesn't fit either, and is shed (HTTP 503)
	// past the waiter cap. 0 disables memory governance entirely.
	MemoryBudgetBytes int64
	// SpillDir is where spill-mode joins and demoted cache builds write temp
	// files ("" = the DB's .spill directory). Only used when
	// MemoryBudgetBytes > 0.
	SpillDir string
	// Logger receives structured JSON log lines (slow queries, request
	// errors). Nil disables logging; all call sites are nil-safe.
	Logger *obs.Logger
	// SlowQueryMicros is the slow-query log threshold: a request whose wall
	// time reaches it is logged with its query shape, trace summary and
	// modeled-vs-observed delta. 0 disables the slow-query log.
	SlowQueryMicros int64
}

// Server serves concurrent queries against one matstore.DB.
type Server struct {
	db    *matstore.DB
	exec  *core.Executor
	store *storage.DB
	cfg   Config

	gov      *governor
	mem      *memory.Governor // nil when memory governance is off
	spillDir string
	builds   *operators.BuildCache // nil when disabled
	plans    *planCache            // nil when disabled
	results  *resultCache          // nil when disabled

	sessions   atomic.Int64
	queries    atomic.Int64
	planBuilds atomic.Int64

	draining     atomic.Bool
	spilledJoins atomic.Int64
	spilledParts atomic.Int64
	spillBytes   atomic.Int64

	start   time.Time
	metrics *serverMetrics
	logger  *obs.Logger
}

// New wraps an open DB in a serving layer.
func New(db *matstore.DB, cfg Config) *Server {
	// Resolve every default before cfg is captured, so Config() reports the
	// configuration actually in effect.
	if cfg.WorkerBudget <= 0 {
		cfg.WorkerBudget = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2 * cfg.WorkerBudget
	}
	if cfg.BuildCacheBytes == 0 {
		cfg.BuildCacheBytes = DefaultBuildCacheBytes
	}
	if cfg.PlanCacheEntries == 0 {
		cfg.PlanCacheEntries = DefaultPlanCacheEntries
	}
	if cfg.ResultCacheBytes == 0 {
		cfg.ResultCacheBytes = DefaultResultCacheBytes
	}
	if cfg.GrantSliceMicros == 0 {
		cfg.GrantSliceMicros = DefaultGrantSliceMicros
	}
	s := &Server{
		db:     db,
		exec:   db.Exec(),
		store:  db.Storage(),
		cfg:    cfg,
		gov:    newGovernor(cfg.MaxConcurrent, cfg.WorkerBudget, cfg.GrantSliceMicros),
		start:  time.Now(),
		logger: cfg.Logger,
	}
	if cfg.BuildCacheBytes > 0 {
		s.builds = operators.NewBuildCache(cfg.BuildCacheBytes)
	}
	if cfg.PlanCacheEntries > 0 {
		s.plans = newPlanCache(cfg.PlanCacheEntries)
	}
	if cfg.ResultCacheBytes > 0 {
		s.results = newResultCache(cfg.ResultCacheBytes)
		s.results.minCostUS = cfg.ResultCacheMinCostUS
	}
	if cfg.MemoryBudgetBytes > 0 {
		s.mem = memory.New(cfg.MemoryBudgetBytes, 0)
		s.spillDir = cfg.SpillDir
		if s.spillDir == "" {
			s.spillDir = db.SpillDir()
		}
		if s.builds != nil {
			// Under memory governance, evicted warm builds demote to on-disk
			// hash entries instead of being discarded outright.
			s.builds.EnableDemotion(s.spillDir, 0)
		}
	}
	s.metrics = newServerMetrics(s)
	return s
}

// Metrics returns the server's Prometheus registry (the /metrics backing).
func (s *Server) Metrics() *obs.Registry { return s.metrics.reg }

// DB returns the wrapped database.
func (s *Server) DB() *matstore.DB { return s.db }

// Config returns the resolved configuration.
func (s *Server) Config() Config { return s.cfg }

// InvalidateProjection marks a projection's data as changed: cached results
// over it and cached join builds of it are dropped by generation bumps, and
// the plan cache is cleared (plans pin resolved column handles, so
// invalidation is conservative).
func (s *Server) InvalidateProjection(name string) {
	if s.results != nil {
		s.results.invalidate(name)
	}
	if s.builds != nil {
		s.builds.Invalidate(name)
	}
	if s.plans != nil {
		s.plans.clear()
	}
}

// MarkDraining flips /readyz to not-ready so load balancers stop routing new
// work here; in-flight and already-queued requests still complete. Called by
// the serving binary on SIGTERM before http.Server.Shutdown.
func (s *Server) MarkDraining() { s.draining.Store(true) }

// Draining reports whether MarkDraining has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// MemoryPressured reports whether requests are queued for memory right now.
func (s *Server) MemoryPressured() bool { return s.mem != nil && s.mem.Pressured() }

// MemoryStats is the /stats memory block: the governor's reservation
// counters plus the server's cumulative spill activity.
type MemoryStats struct {
	memory.Stats
	SpilledJoins      int64 `json:"spilled_joins"`
	SpilledPartitions int64 `json:"spilled_partitions"`
	SpillBytes        int64 `json:"spill_bytes"`
}

// Stats is the /stats snapshot: admission, worker and cache counters.
type Stats struct {
	// Process identity: version, runtime, pid and serving uptime.
	Version       string  `json:"version"`
	GoVersion     string  `json:"go_version"`
	PID           int     `json:"pid"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// EndpointRequests counts served HTTP requests per endpoint (all
	// outcomes summed).
	EndpointRequests map[string]int64 `json:"endpoint_requests,omitempty"`
	Sessions         int64            `json:"sessions"`
	Queries          int64            `json:"queries"`
	Admission        AdmissionStats   `json:"admission"`
	Memory           MemoryStats      `json:"memory"`
	// PlanBuilds counts BuildPlan/BuildJoinPlan invocations; with the plan
	// cache on it lags Queries by exactly the hit count.
	PlanBuilds  int64                     `json:"plan_builds"`
	ResultCache ResultCacheStats          `json:"result_cache"`
	PlanCache   PlanCacheStats            `json:"plan_cache"`
	BuildCache  operators.BuildCacheStats `json:"build_cache"`
	Pool        buffer.Stats              `json:"buffer_pool"`
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Version:       obs.Version,
		GoVersion:     runtime.Version(),
		PID:           os.Getpid(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Sessions:      s.sessions.Load(),
		Queries:       s.queries.Load(),
		Admission:     s.gov.snapshot(),
		PlanBuilds:    s.planBuilds.Load(),
		Pool:          s.db.PoolStats(),
	}
	if s.metrics != nil {
		reqs := map[string]int64{}
		for _, sm := range s.metrics.requests.Snapshot() {
			if len(sm.Labels) > 0 {
				reqs[sm.Labels[0].Value] += int64(sm.Value)
			}
		}
		if len(reqs) > 0 {
			st.EndpointRequests = reqs
		}
	}
	if s.mem != nil {
		st.Memory = MemoryStats{
			Stats:             s.mem.Stats(),
			SpilledJoins:      s.spilledJoins.Load(),
			SpilledPartitions: s.spilledParts.Load(),
			SpillBytes:        s.spillBytes.Load(),
		}
	}
	if s.results != nil {
		st.ResultCache = s.results.snapshot()
	}
	if s.plans != nil {
		st.PlanCache = s.plans.snapshot()
	}
	if s.builds != nil {
		st.BuildCache = s.builds.Stats()
	}
	return st
}

// observeAdmission records an admission outcome on the live instruments:
// the queue-wait histogram and the grant-width histogram. Both are unlabeled
// (pre-resolved), so the cost is two allocation-free atomic observations.
func (s *Server) observeAdmission(ai admitInfo) {
	if s.metrics == nil {
		return
	}
	s.metrics.queueWait.Observe((ai.AdmissionWait + ai.WorkerWait).Seconds())
	s.metrics.grants.Observe(float64(ai.Grant))
}

// RequestError marks a failure attributable to the request itself — unknown
// projection or column, malformed query shape — rather than the server. The
// HTTP layer maps it to 400 Bad Request; execution failures stay 500.
type RequestError struct{ Err error }

func (e *RequestError) Error() string { return e.Err.Error() }
func (e *RequestError) Unwrap() error { return e.Err }

// badRequest wraps a non-nil error as a RequestError.
func badRequest(err error) error {
	if err == nil {
		return nil
	}
	return &RequestError{Err: err}
}

// Session is one client's handle on the server; all request methods go
// through admission control. Sessions are safe for concurrent use and cheap
// to create (the HTTP front-end makes one per request).
type Session struct {
	srv *Server
	// ID numbers the session (diagnostics only).
	ID int64
}

// NewSession opens a session.
func (s *Server) NewSession() *Session {
	return &Session{srv: s, ID: s.sessions.Add(1)}
}

// Info describes how the service executed one request.
type Info struct {
	Session int64 `json:"session"`
	// Workers is the granted (derated) morsel parallelism (0 when the
	// request was served from the result cache without admission).
	Workers int `json:"workers"`
	// Queued is the time spent blocked at the admission gate (admission
	// slot wait plus worker wait).
	Queued time.Duration `json:"queued_nanos"`
	// EstCostUS is the analytical model's total cost estimate the grant
	// sizer used (0 when unavailable).
	EstCostUS float64 `json:"est_cost_us"`
	// ResultCacheHit reports the request was answered entirely from the
	// result cache; PlanCacheHit and BuildCacheHit report shared-cache
	// reuse during execution.
	ResultCacheHit bool `json:"result_cache_hit"`
	PlanCacheHit   bool `json:"plan_cache_hit"`
	BuildCacheHit  bool `json:"build_cache_hit"`
	// ReservedBytes is the memory reservation the request held while running
	// (0 with memory governance off); Spilled reports the governor forced the
	// join's build side into Grace spill mode.
	ReservedBytes int64 `json:"reserved_bytes,omitempty"`
	Spilled       bool  `json:"spilled,omitempty"`
}

// SelectResult is a served selection/aggregation response.
type SelectResult struct {
	Res   *matstore.Result
	Stats *matstore.Stats
	Info  Info
}

// JoinResult is a served join response.
type JoinResult struct {
	Res   *matstore.Result
	Stats *matstore.JoinStats
	Info  Info
}

// Select runs a selection/aggregation through the result cache, admission
// control and the plan cache. The query's Parallelism is a ceiling on the
// granted worker share (0 = take the full cost-sized share). Cancelling ctx
// abandons the request at the admission gate or between plan phases.
func (c *Session) Select(ctx context.Context, projection string, q matstore.Query, strat matstore.Strategy) (*SelectResult, error) {
	s := c.srv
	s.queries.Add(1)
	info := Info{Session: c.ID}
	span := obs.SpanFromContext(ctx)
	traced := span != nil

	var key string
	if s.results != nil || s.plans != nil {
		key = selectKey(projection, q, strat)
	}
	var gens []uint64
	if s.results != nil {
		cspan := span.Child("result_cache.lookup")
		e, hit := s.results.get(key)
		cspan.SetAttr("hit", hit)
		cspan.End()
		if hit {
			info.ResultCacheHit = true
			return &SelectResult{Res: e.res, Stats: e.selStats, Info: info}, nil
		}
		gens = s.results.generations([]string{projection})
	}
	if est, err := s.db.EstimateSelectCost(projection, q, strat); err == nil {
		info.EstCostUS = est.Total()
	}

	aspan := span.Child("admission")
	ai, release, err := s.gov.admit(ctx, q.Parallelism, info.EstCostUS)
	aspan.End()
	if err != nil {
		return nil, err
	}
	defer release()
	info.Workers, info.Queued = ai.Grant, ai.AdmissionWait+ai.WorkerWait
	aspan.SetAttr("grant", ai.Grant)
	aspan.SetAttr("queued_ns", info.Queued.Nanoseconds())
	s.observeAdmission(ai)

	p, err := s.store.Projection(projection)
	if err != nil {
		return nil, badRequest(err)
	}
	// Traced requests bypass the plan cache on BOTH sides (no get, no put):
	// the per-node Observed counters must describe exactly this run, and a
	// cached plan accumulates counters across every traced run that touches
	// it (the same reason Explain builds fresh trees).
	pspan := span.Child("plan.build")
	var pl *plan.Plan
	if s.plans != nil && !traced {
		if cached, ok := s.plans.get(key); ok {
			pl, info.PlanCacheHit = cached, true
		} else {
			if pl, err = s.buildSelect(p, q, strat); err != nil {
				return nil, badRequest(err)
			}
			s.plans.put(key, pl)
		}
	} else if pl, err = s.buildSelect(p, q, strat); err != nil {
		return nil, badRequest(err)
	}
	pspan.SetAttr("cache_hit", info.PlanCacheHit)
	pspan.End()
	if err := ctx.Err(); err != nil {
		return nil, err // cancelled between build and run: the slot releases unused
	}
	espan := span.Child("execute")
	var res *matstore.Result
	var stats *matstore.Stats
	if traced {
		consts := s.db.Constants()
		consts.AnnotatePlan(pl, true)
		res, stats, err = s.exec.RunPlanWith(pl, strat, ai.Grant,
			plan.RunOptions{Ctx: ctx, Observe: true, Trace: espan})
	} else {
		res, stats, err = s.exec.RunPlan(pl, strat, ai.Grant, false)
	}
	espan.End()
	if err != nil {
		return nil, err
	}
	if s.results != nil {
		s.results.put(&resultEntry{
			key: key, projs: []string{projection}, gens: gens,
			bytes: resultBytes(key, res), costUS: info.EstCostUS,
			res: res, selStats: stats,
		})
	}
	return &SelectResult{Res: res, Stats: stats, Info: info}, nil
}

func (s *Server) buildSelect(p *storage.Projection, q matstore.Query, strat matstore.Strategy) (*plan.Plan, error) {
	s.planBuilds.Add(1)
	return s.exec.BuildPlan(p, q, strat)
}

// Join runs an equi-join through the result cache, admission control and
// both shared execution caches: the plan cache skips BuildJoinPlan for a
// repeated shape, and the build cache shares the partitioned hash side
// across queries over the same inner table.
func (c *Session) Join(ctx context.Context, left, right string, q matstore.JoinQuery, rs matstore.RightStrategy) (*JoinResult, error) {
	s := c.srv
	s.queries.Add(1)
	info := Info{Session: c.ID}
	span := obs.SpanFromContext(ctx)
	traced := span != nil

	var key string
	if s.results != nil || s.plans != nil {
		key = joinKey(left, right, q, rs)
	}
	var gens []uint64
	projs := []string{left, right}
	if s.results != nil {
		cspan := span.Child("result_cache.lookup")
		e, hit := s.results.get(key)
		cspan.SetAttr("hit", hit)
		cspan.End()
		if hit {
			info.ResultCacheHit = true
			return &JoinResult{Res: e.res, Stats: e.joinStats, Info: info}, nil
		}
		gens = s.results.generations(projs)
	}
	if est, err := s.db.EstimateJoinCost(left, right, q, rs); err == nil {
		info.EstCostUS = est.Total()
	}

	// Memory admission comes BEFORE the worker-slot gate (one consistent
	// acquisition order: bytes, then slots — a memory waiter never sits on a
	// worker slot). The reservation is held until this request finishes, on
	// every path out.
	memEst, _ := s.db.EstimateJoinMemory(right, q, rs)
	mspan := span.Child("memory.reserve")
	resv, spillCfg, err := s.admitMemory(ctx, memEst)
	mspan.End()
	if err != nil {
		return nil, err
	}
	defer resv.Release()
	mspan.SetAttr("est_bytes", memEst)
	if resv != nil {
		info.ReservedBytes = resv.Bytes()
		mspan.SetAttr("reserved_bytes", resv.Bytes())
	}
	if spillCfg != nil {
		mspan.SetAttr("spill_mode", true)
	}

	aspan := span.Child("admission")
	ai, release, err := s.gov.admit(ctx, q.Parallelism, info.EstCostUS)
	aspan.End()
	if err != nil {
		return nil, err
	}
	defer release()
	info.Workers, info.Queued = ai.Grant, ai.AdmissionWait+ai.WorkerWait
	aspan.SetAttr("grant", ai.Grant)
	aspan.SetAttr("queued_ns", info.Queued.Nanoseconds())
	s.observeAdmission(ai)

	pspan := span.Child("plan.build")
	var pl *plan.Plan
	if s.plans != nil && !traced {
		if cached, ok := s.plans.get(key); ok {
			pl, info.PlanCacheHit = cached, true
		} else {
			if pl, err = s.buildJoin(left, right, q, rs); err != nil {
				return nil, badRequest(err)
			}
			s.plans.put(key, pl)
		}
	} else if pl, err = s.buildJoin(left, right, q, rs); err != nil {
		return nil, badRequest(err)
	}
	pspan.SetAttr("cache_hit", info.PlanCacheHit)
	pspan.End()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	espan := span.Child("execute")
	if traced {
		consts := s.db.Constants()
		consts.AnnotatePlan(pl, true)
	}
	res, stats, err := s.exec.RunJoinPlanWith(pl, ai.Grant,
		plan.RunOptions{Ctx: ctx, Observe: traced, Spill: spillCfg, Trace: espan})
	espan.End()
	if err != nil {
		return nil, err
	}
	info.BuildCacheHit = stats.Join.BuildCacheHit
	if stats.Join.Spilled {
		info.Spilled = true
		s.spilledJoins.Add(1)
		s.spilledParts.Add(int64(stats.Join.SpilledParts))
		s.spillBytes.Add(stats.Join.SpillBytes)
	}
	if s.results != nil {
		s.results.put(&resultEntry{
			key: key, projs: projs, gens: gens,
			bytes: resultBytes(key, res), costUS: info.EstCostUS,
			res: res, joinStats: stats,
		})
	}
	return &JoinResult{Res: res, Stats: stats, Info: info}, nil
}

// spillGrantFloor is the smallest spill-mode reservation admitMemory asks
// for: enough for one resident partition's working set plus frame buffers.
const spillGrantFloor = 64 << 10

// admitMemory resolves a join's byte reservation against the governor.
// Outcomes, in order: memory governance off or no estimate → run ungoverned;
// the full estimate fits right now → in-memory grant (nil SpillConfig); else
// a spill-mode grant of min(estimate, budget/4) clamped to
// [spillGrantFloor, budget] — preferring bounded spill over waiting for the
// full footprint — which may queue briefly and is shed (memory.ErrShed) past
// the waiter cap. The caller releases the reservation on every path.
func (s *Server) admitMemory(ctx context.Context, est int64) (*memory.Reservation, *operators.SpillConfig, error) {
	if s.mem == nil || est <= 0 {
		return nil, nil, nil
	}
	if r := s.mem.TryReserve(est); r != nil {
		return r, nil, nil
	}
	budget := s.mem.Budget()
	grant := est
	if quarter := budget / 4; grant > quarter {
		grant = quarter
	}
	if grant < spillGrantFloor {
		grant = spillGrantFloor
	}
	if grant > budget {
		grant = budget
	}
	r, err := s.mem.Reserve(ctx, grant)
	if err != nil {
		return nil, nil, err
	}
	return r, &operators.SpillConfig{BudgetBytes: grant, EstBytes: est, Dir: s.spillDir}, nil
}

func (s *Server) buildJoin(left, right string, q matstore.JoinQuery, rs matstore.RightStrategy) (*plan.Plan, error) {
	lp, err := s.store.Projection(left)
	if err != nil {
		return nil, err
	}
	rp, err := s.store.Projection(right)
	if err != nil {
		return nil, err
	}
	s.planBuilds.Add(1)
	pl, err := s.exec.BuildJoinPlan(lp, rp, q, rs)
	if err != nil {
		return nil, err
	}
	if s.builds != nil {
		pl.Builds = s.builds
	}
	return pl, nil
}

// Explain runs DB.Explain (selection) through admission control; the
// observed run executes at the granted parallelism. Explains bypass the
// result and plan caches — their per-node observed counters want a fresh
// tree.
func (c *Session) Explain(ctx context.Context, projection string, q matstore.Query, strat matstore.Strategy) (*matstore.Explanation, Info, error) {
	s := c.srv
	info := Info{Session: c.ID}
	span := obs.SpanFromContext(ctx)
	if est, err := s.db.EstimateSelectCost(projection, q, strat); err == nil {
		info.EstCostUS = est.Total()
	}
	aspan := span.Child("admission")
	ai, release, err := s.gov.admit(ctx, q.Parallelism, info.EstCostUS)
	aspan.End()
	if err != nil {
		return nil, info, err
	}
	defer release()
	s.queries.Add(1)
	info.Workers, info.Queued = ai.Grant, ai.AdmissionWait+ai.WorkerWait
	aspan.SetAttr("grant", ai.Grant)
	aspan.SetAttr("queued_ns", info.Queued.Nanoseconds())
	s.observeAdmission(ai)
	p, err := s.store.Projection(projection)
	if err != nil {
		return nil, info, badRequest(err)
	}
	if err := q.Validate(p); err != nil {
		return nil, info, badRequest(err)
	}
	q.Parallelism = ai.Grant
	espan := span.Child("execute")
	ex, err := s.db.ExplainTraced(projection, q, strat, espan)
	espan.End()
	return ex, info, err
}

// ExplainJoin runs DB.ExplainJoin through admission control.
func (c *Session) ExplainJoin(ctx context.Context, left, right string, q matstore.JoinQuery, rs matstore.RightStrategy) (*matstore.Explanation, Info, error) {
	s := c.srv
	info := Info{Session: c.ID}
	span := obs.SpanFromContext(ctx)
	if est, err := s.db.EstimateJoinCost(left, right, q, rs); err == nil {
		info.EstCostUS = est.Total()
	}
	aspan := span.Child("admission")
	ai, release, err := s.gov.admit(ctx, q.Parallelism, info.EstCostUS)
	aspan.End()
	if err != nil {
		return nil, info, err
	}
	defer release()
	s.queries.Add(1)
	info.Workers, info.Queued = ai.Grant, ai.AdmissionWait+ai.WorkerWait
	aspan.SetAttr("grant", ai.Grant)
	aspan.SetAttr("queued_ns", info.Queued.Nanoseconds())
	s.observeAdmission(ai)
	for _, proj := range []string{left, right} {
		if _, err := s.store.Projection(proj); err != nil {
			return nil, info, badRequest(err)
		}
	}
	q.Parallelism = ai.Grant
	espan := span.Child("execute")
	ex, err := s.db.ExplainJoinTraced(left, right, q, rs, espan)
	espan.End()
	return ex, info, err
}

// String renders a one-line server description.
func (s *Server) String() string {
	return fmt.Sprintf("service.Server{budget=%d, max_concurrent=%d, result_cache=%v, build_cache=%v, plan_cache=%v}",
		s.cfg.WorkerBudget, s.cfg.MaxConcurrent, s.results != nil, s.builds != nil, s.plans != nil)
}
