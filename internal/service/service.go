// Package service is the concurrent query-serving subsystem layered over
// the matstore engine: it turns the one-query-at-a-time executor of the
// paper reproduction into a server that runs many queries against one DB,
// one buffer pool and one global worker budget at once.
//
// Three cooperating parts:
//
//   - Admission control & worker sharing (admission.go): requests enter
//     through sessions and an admission gate (at most MaxConcurrent in
//     flight; the rest queue), and each admitted query's morsel parallelism
//     is derated to its fair share of the global WorkerBudget, clamped so
//     the sum of grants never exceeds the budget.
//   - Shared caches: a keyed join-build cache (operators.BuildCache) shares
//     partitioned hash sides across queries under a byte budget with LRU
//     eviction and generation invalidation, and a plan cache (plancache.go)
//     skips BuildPlan for repeated query shapes.
//   - A serving front-end (http.go, cmd/csserve): HTTP JSON endpoints
//     /query, /join, /explain and /stats over a Server.
//
// Sharing caches and derating parallelism are pure execution choices — the
// paper's core invariant — so every response is byte-identical to serial
// single-query execution; the concurrent differential suite locks that in.
package service

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"matstore"
	"matstore/internal/buffer"
	"matstore/internal/core"
	"matstore/internal/operators"
	"matstore/internal/plan"
	"matstore/internal/storage"
)

// DefaultBuildCacheBytes bounds the join-build cache when Config leaves it 0.
const DefaultBuildCacheBytes = 64 << 20

// DefaultPlanCacheEntries bounds the plan cache when Config leaves it 0.
const DefaultPlanCacheEntries = 256

// Config tunes a Server.
type Config struct {
	// MaxConcurrent is the admission limit: at most this many requests
	// execute at once, the rest queue. 0 derives 2× the worker budget
	// (enough queueing to keep workers saturated without unbounded pile-up).
	MaxConcurrent int
	// WorkerBudget is the global morsel-worker budget divided across
	// in-flight queries (0 = one per CPU).
	WorkerBudget int
	// BuildCacheBytes bounds the shared join-build cache (0 = the 64 MiB
	// default, negative = cache disabled).
	BuildCacheBytes int64
	// PlanCacheEntries bounds the plan cache (0 = the 256-entry default,
	// negative = cache disabled).
	PlanCacheEntries int
}

// Server serves concurrent queries against one matstore.DB.
type Server struct {
	db    *matstore.DB
	exec  *core.Executor
	store *storage.DB
	cfg   Config

	gov    *governor
	builds *operators.BuildCache // nil when disabled
	plans  *planCache            // nil when disabled

	sessions   atomic.Int64
	queries    atomic.Int64
	planBuilds atomic.Int64
}

// New wraps an open DB in a serving layer.
func New(db *matstore.DB, cfg Config) *Server {
	// Resolve every default before cfg is captured, so Config() reports the
	// configuration actually in effect.
	if cfg.WorkerBudget <= 0 {
		cfg.WorkerBudget = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2 * cfg.WorkerBudget
	}
	if cfg.BuildCacheBytes == 0 {
		cfg.BuildCacheBytes = DefaultBuildCacheBytes
	}
	if cfg.PlanCacheEntries == 0 {
		cfg.PlanCacheEntries = DefaultPlanCacheEntries
	}
	s := &Server{
		db:    db,
		exec:  db.Exec(),
		store: db.Storage(),
		cfg:   cfg,
		gov:   newGovernor(cfg.MaxConcurrent, cfg.WorkerBudget),
	}
	if cfg.BuildCacheBytes > 0 {
		s.builds = operators.NewBuildCache(cfg.BuildCacheBytes)
	}
	if cfg.PlanCacheEntries > 0 {
		s.plans = newPlanCache(cfg.PlanCacheEntries)
	}
	return s
}

// DB returns the wrapped database.
func (s *Server) DB() *matstore.DB { return s.db }

// Config returns the resolved configuration.
func (s *Server) Config() Config { return s.cfg }

// InvalidateProjection marks a projection's data as changed: cached join
// builds over it are dropped by a generation bump, and the plan cache is
// cleared (plans pin resolved column handles, so invalidation is
// conservative).
func (s *Server) InvalidateProjection(name string) {
	if s.builds != nil {
		s.builds.Invalidate(name)
	}
	if s.plans != nil {
		s.plans.clear()
	}
}

// Stats is the /stats snapshot: admission, worker and cache counters.
type Stats struct {
	Sessions  int64          `json:"sessions"`
	Queries   int64          `json:"queries"`
	Admission AdmissionStats `json:"admission"`
	// PlanBuilds counts BuildPlan/BuildJoinPlan invocations; with the plan
	// cache on it lags Queries by exactly the hit count.
	PlanBuilds int64                     `json:"plan_builds"`
	PlanCache  PlanCacheStats            `json:"plan_cache"`
	BuildCache operators.BuildCacheStats `json:"build_cache"`
	Pool       buffer.Stats              `json:"buffer_pool"`
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Sessions:   s.sessions.Load(),
		Queries:    s.queries.Load(),
		Admission:  s.gov.snapshot(),
		PlanBuilds: s.planBuilds.Load(),
		Pool:       s.db.PoolStats(),
	}
	if s.plans != nil {
		st.PlanCache = s.plans.snapshot()
	}
	if s.builds != nil {
		st.BuildCache = s.builds.Stats()
	}
	return st
}

// RequestError marks a failure attributable to the request itself — unknown
// projection or column, malformed query shape — rather than the server. The
// HTTP layer maps it to 400 Bad Request; execution failures stay 500.
type RequestError struct{ Err error }

func (e *RequestError) Error() string { return e.Err.Error() }
func (e *RequestError) Unwrap() error { return e.Err }

// badRequest wraps a non-nil error as a RequestError.
func badRequest(err error) error {
	if err == nil {
		return nil
	}
	return &RequestError{Err: err}
}

// Session is one client's handle on the server; all request methods go
// through admission control. Sessions are safe for concurrent use and cheap
// to create (the HTTP front-end makes one per request).
type Session struct {
	srv *Server
	// ID numbers the session (diagnostics only).
	ID int64
}

// NewSession opens a session.
func (s *Server) NewSession() *Session {
	return &Session{srv: s, ID: s.sessions.Add(1)}
}

// Info describes how the service executed one request.
type Info struct {
	Session int64 `json:"session"`
	// Workers is the granted (derated) morsel parallelism.
	Workers int `json:"workers"`
	// Queued is the time spent waiting at the admission gate.
	Queued time.Duration `json:"queued_nanos"`
	// PlanCacheHit and BuildCacheHit report shared-cache reuse.
	PlanCacheHit  bool `json:"plan_cache_hit"`
	BuildCacheHit bool `json:"build_cache_hit"`
}

// SelectResult is a served selection/aggregation response.
type SelectResult struct {
	Res   *matstore.Result
	Stats *matstore.Stats
	Info  Info
}

// JoinResult is a served join response.
type JoinResult struct {
	Res   *matstore.Result
	Stats *matstore.JoinStats
	Info  Info
}

// Select runs a selection/aggregation through admission control and the
// plan cache. The query's Parallelism is a ceiling on the granted worker
// share (0 = take the full fair share).
func (c *Session) Select(projection string, q matstore.Query, strat matstore.Strategy) (*SelectResult, error) {
	s := c.srv
	grant, release, queued := s.gov.admit(q.Parallelism)
	defer release()
	s.queries.Add(1)

	p, err := s.store.Projection(projection)
	if err != nil {
		return nil, badRequest(err)
	}
	info := Info{Session: c.ID, Workers: grant, Queued: queued}
	var pl *plan.Plan
	if s.plans != nil {
		key := selectKey(projection, q, strat)
		if cached, ok := s.plans.get(key); ok {
			pl, info.PlanCacheHit = cached, true
		} else {
			if pl, err = s.buildSelect(p, q, strat); err != nil {
				return nil, badRequest(err)
			}
			s.plans.put(key, pl)
		}
	} else if pl, err = s.buildSelect(p, q, strat); err != nil {
		return nil, badRequest(err)
	}
	res, stats, err := s.exec.RunPlan(pl, strat, grant, false)
	if err != nil {
		return nil, err
	}
	return &SelectResult{Res: res, Stats: stats, Info: info}, nil
}

func (s *Server) buildSelect(p *storage.Projection, q matstore.Query, strat matstore.Strategy) (*plan.Plan, error) {
	s.planBuilds.Add(1)
	return s.exec.BuildPlan(p, q, strat)
}

// Join runs an equi-join through admission control and both shared caches:
// the plan cache skips BuildJoinPlan for a repeated shape, and the build
// cache shares the partitioned hash side across queries over the same inner
// table.
func (c *Session) Join(left, right string, q matstore.JoinQuery, rs matstore.RightStrategy) (*JoinResult, error) {
	s := c.srv
	grant, release, queued := s.gov.admit(q.Parallelism)
	defer release()
	s.queries.Add(1)

	info := Info{Session: c.ID, Workers: grant, Queued: queued}
	var pl *plan.Plan
	var err error
	if s.plans != nil {
		key := joinKey(left, right, q, rs)
		if cached, ok := s.plans.get(key); ok {
			pl, info.PlanCacheHit = cached, true
		} else {
			if pl, err = s.buildJoin(left, right, q, rs); err != nil {
				return nil, badRequest(err)
			}
			s.plans.put(key, pl)
		}
	} else if pl, err = s.buildJoin(left, right, q, rs); err != nil {
		return nil, badRequest(err)
	}
	res, stats, err := s.exec.RunJoinPlan(pl, grant, false)
	if err != nil {
		return nil, err
	}
	info.BuildCacheHit = stats.Join.BuildCacheHit
	return &JoinResult{Res: res, Stats: stats, Info: info}, nil
}

func (s *Server) buildJoin(left, right string, q matstore.JoinQuery, rs matstore.RightStrategy) (*plan.Plan, error) {
	lp, err := s.store.Projection(left)
	if err != nil {
		return nil, err
	}
	rp, err := s.store.Projection(right)
	if err != nil {
		return nil, err
	}
	s.planBuilds.Add(1)
	pl, err := s.exec.BuildJoinPlan(lp, rp, q, rs)
	if err != nil {
		return nil, err
	}
	if s.builds != nil {
		pl.Builds = s.builds
	}
	return pl, nil
}

// Explain runs DB.Explain (selection) through admission control; the
// observed run executes at the granted parallelism. Explains bypass the plan
// cache — their per-node observed counters want a fresh tree.
func (c *Session) Explain(projection string, q matstore.Query, strat matstore.Strategy) (*matstore.Explanation, Info, error) {
	grant, release, queued := c.srv.gov.admit(q.Parallelism)
	defer release()
	c.srv.queries.Add(1)
	info := Info{Session: c.ID, Workers: grant, Queued: queued}
	p, err := c.srv.store.Projection(projection)
	if err != nil {
		return nil, info, badRequest(err)
	}
	if err := q.Validate(p); err != nil {
		return nil, info, badRequest(err)
	}
	q.Parallelism = grant
	ex, err := c.srv.db.Explain(projection, q, strat)
	return ex, info, err
}

// ExplainJoin runs DB.ExplainJoin through admission control.
func (c *Session) ExplainJoin(left, right string, q matstore.JoinQuery, rs matstore.RightStrategy) (*matstore.Explanation, Info, error) {
	grant, release, queued := c.srv.gov.admit(q.Parallelism)
	defer release()
	c.srv.queries.Add(1)
	info := Info{Session: c.ID, Workers: grant, Queued: queued}
	for _, proj := range []string{left, right} {
		if _, err := c.srv.store.Projection(proj); err != nil {
			return nil, info, badRequest(err)
		}
	}
	q.Parallelism = grant
	ex, err := c.srv.db.ExplainJoin(left, right, q, rs)
	return ex, info, err
}

// String renders a one-line server description.
func (s *Server) String() string {
	return fmt.Sprintf("service.Server{budget=%d, max_concurrent=%d, build_cache=%v, plan_cache=%v}",
		s.cfg.WorkerBudget, s.cfg.MaxConcurrent, s.builds != nil, s.plans != nil)
}
