// Concurrent differential suite: the paper's core invariant — that
// materialization strategy, worker count and (now) cache/sharing choices are
// pure execution decisions — extended to the serving layer. A mixed workload
// (all four strategies + joins, varied selectivities) replayed through the
// server at sessions {1, 4, 8} × worker budgets {1, 4}, with and without the
// shared caches, must return byte-identical results to serial single-query
// execution; and the admission governor must never grant more workers than
// the configured budget. Runs under -race via `go test -race ./internal/...`
// (the 1-CPU CI container proves concurrency safety through the race
// detector and differential results, not wall time).
package service_test

import (
	"context"
	"fmt"
	"os"
	"reflect"
	"sync"
	"testing"

	"matstore"
	"matstore/internal/bench"
	"matstore/internal/core"
	"matstore/internal/service"
	"matstore/internal/tpch"
)

var (
	dataOnce sync.Once
	dataDir  string
	dataErr  error
)

const dataCustomers = 300 // customer rows at scale 0.002

func testData(t *testing.T) string {
	t.Helper()
	dataOnce.Do(func() {
		dataDir, dataErr = os.MkdirTemp("", "matstore-service-test")
		if dataErr != nil {
			return
		}
		dataErr = tpch.Generate(dataDir, tpch.Config{Scale: 0.002, Seed: 5})
	})
	if dataErr != nil {
		t.Fatal(dataErr)
	}
	return dataDir
}

func TestMain(m *testing.M) {
	code := m.Run()
	if dataDir != "" {
		os.RemoveAll(dataDir)
	}
	if shardedRoot != "" {
		os.RemoveAll(shardedRoot)
	}
	if keypartRoot != "" {
		os.RemoveAll(keypartRoot)
	}
	os.Exit(code)
}

// openDB opens the shared dataset with a small chunk size so the 12k-row
// tables split into many morsels at every worker count.
func openDB(t *testing.T) *matstore.DB {
	t.Helper()
	db, err := matstore.Open(testData(t), matstore.Options{Exec: core.Options{ChunkSize: 1024}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// newServer wraps a fresh DB handle (own caches, shared files).
func newServer(t *testing.T, cfg service.Config) *service.Server {
	t.Helper()
	return service.New(openDB(t), cfg)
}

// cacheConfig returns a server config with the execution caches (plan,
// build) on or off; the result cache stays off so cache tests observe real
// executions. fullConfig turns all three on.
func cacheConfig(budget, maxConcurrent int, caches bool) service.Config {
	cfg := service.Config{WorkerBudget: budget, MaxConcurrent: maxConcurrent, ResultCacheBytes: -1}
	if !caches {
		cfg.BuildCacheBytes = -1
		cfg.PlanCacheEntries = -1
	}
	return cfg
}

func fullConfig(budget, maxConcurrent int) service.Config {
	return service.Config{WorkerBudget: budget, MaxConcurrent: maxConcurrent}
}

// TestConcurrentMixedWorkloadDifferential is the acceptance suite: every
// served response must be byte-identical (row order included) to the serial
// single-query reference, at every (sessions, worker budget, caches)
// configuration, and the governor must never exceed the worker budget.
func TestConcurrentMixedWorkloadDifferential(t *testing.T) {
	ref := openDB(t)
	reqs := bench.MixedWorkload(dataCustomers)
	want := make([]*matstore.Result, len(reqs))
	for i, r := range reqs {
		res, err := r.RunSerial(ref)
		if err != nil {
			t.Fatalf("serial %s: %v", r.Name, err)
		}
		if i < 12 && res.NumRows() == 0 {
			t.Fatalf("serial %s: empty reference result", r.Name)
		}
		want[i] = res
	}

	for _, sessions := range []int{1, 4, 8} {
		for _, budget := range []int{1, 4} {
			for _, caches := range []bool{true, false} {
				name := fmt.Sprintf("sessions=%d/budget=%d/caches=%v", sessions, budget, caches)
				t.Run(name, func(t *testing.T) {
					cfg := cacheConfig(budget, 0, caches)
					if caches {
						cfg = fullConfig(budget, 0)
					}
					srv := newServer(t, cfg)
					var wg sync.WaitGroup
					errs := make([]error, sessions)
					for c := 0; c < sessions; c++ {
						wg.Add(1)
						go func(c int) {
							defer wg.Done()
							sess := srv.NewSession()
							off := c * len(reqs) / sessions
							for i := range reqs {
								idx := (off + i) % len(reqs)
								res, info, err := reqs[idx].Run(context.Background(), sess)
								if err != nil {
									errs[c] = fmt.Errorf("%s: %w", reqs[idx].Name, err)
									return
								}
								if info.ResultCacheHit {
									// A cached response consumed no admission
									// grant at all.
									if info.Workers != 0 {
										errs[c] = fmt.Errorf("%s: result-cache hit granted %d workers, want 0",
											reqs[idx].Name, info.Workers)
										return
									}
								} else if info.Workers < 1 || info.Workers > budget {
									errs[c] = fmt.Errorf("%s: granted %d workers outside [1, %d]",
										reqs[idx].Name, info.Workers, budget)
									return
								}
								if !reflect.DeepEqual(res.Columns, want[idx].Columns) ||
									!reflect.DeepEqual(res.Cols, want[idx].Cols) {
									errs[c] = fmt.Errorf("%s: served result differs from serial reference", reqs[idx].Name)
									return
								}
							}
						}(c)
					}
					wg.Wait()
					for _, err := range errs {
						if err != nil {
							t.Fatal(err)
						}
					}
					st := srv.Stats()
					if st.Admission.PeakWorkersInUse > budget {
						t.Errorf("peak workers in use %d exceeds budget %d", st.Admission.PeakWorkersInUse, budget)
					}
					if st.Admission.InFlight != 0 || st.Admission.WorkersInUse != 0 {
						t.Errorf("governor leaked: in_flight=%d workers_in_use=%d",
							st.Admission.InFlight, st.Admission.WorkersInUse)
					}
					// Every request either admitted to the worker pool or was
					// served from the result cache — never both, never neither.
					wantQueries := int64(sessions*len(reqs)) - st.ResultCache.Hits
					if st.Admission.Admitted != wantQueries || st.Admission.Completed != wantQueries {
						t.Errorf("admitted/completed = %d/%d, want %d (= requests - %d result-cache hits)",
							st.Admission.Admitted, st.Admission.Completed, wantQueries, st.ResultCache.Hits)
					}
					if caches && sessions > 1 && st.BuildCache.Hits == 0 {
						t.Errorf("repeated joins across %d sessions produced no build-cache hits", sessions)
					}
					if !caches && (st.BuildCache.Hits+st.BuildCache.Misses+st.PlanCache.Hits+
						st.PlanCache.Misses+st.ResultCache.Hits+st.ResultCache.Misses) != 0 {
						t.Errorf("disabled caches recorded traffic: %+v %+v %+v", st.BuildCache, st.PlanCache, st.ResultCache)
					}
				})
			}
		}
	}
}

// TestClosedLoopDriver smoke-runs the bench closed-loop driver: all requests
// complete, and the second round's joins hit both caches.
func TestClosedLoopDriver(t *testing.T) {
	srv := newServer(t, cacheConfig(2, 4, true))
	reqs := bench.MixedWorkload(dataCustomers)
	stats, err := bench.RunClosedLoop(context.Background(), srv, 4, 2, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(4 * 2 * len(reqs)); stats.Requests != want {
		t.Errorf("requests = %d, want %d", stats.Requests, want)
	}
	if stats.BuildCacheHits == 0 || stats.PlanCacheHits == 0 {
		t.Errorf("closed loop produced no cache hits: %+v", stats)
	}
}

// TestPlanCacheSkipsBuildPlan pins the plan cache's contract: a repeated
// query shape does not call BuildPlan again (the PlanBuilds counter stands
// still), is reported as a hit, and still returns the identical result.
func TestPlanCacheSkipsBuildPlan(t *testing.T) {
	srv := newServer(t, cacheConfig(2, 4, true))
	sess := srv.NewSession()
	q := matstore.Query{
		Output: []string{tpch.ColShipdate, tpch.ColLinenum},
		Filters: []matstore.Filter{
			{Col: tpch.ColShipdate, Pred: matstore.LessThan(1200)},
		},
	}
	first, err := sess.Select(context.Background(), tpch.LineitemProj, q, matstore.LMParallel)
	if err != nil {
		t.Fatal(err)
	}
	if first.Info.PlanCacheHit {
		t.Error("first execution reported a plan-cache hit")
	}
	builds := srv.Stats().PlanBuilds
	second, err := sess.Select(context.Background(), tpch.LineitemProj, q, matstore.LMParallel)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Info.PlanCacheHit {
		t.Error("repeated query missed the plan cache")
	}
	if got := srv.Stats().PlanBuilds; got != builds {
		t.Errorf("repeated query called BuildPlan (%d -> %d)", builds, got)
	}
	if !reflect.DeepEqual(first.Res.Cols, second.Res.Cols) {
		t.Error("cached plan returned different result")
	}
	// A different shape (same columns, different bound) must miss.
	q.Filters[0].Pred = matstore.LessThan(1300)
	third, err := sess.Select(context.Background(), tpch.LineitemProj, q, matstore.LMParallel)
	if err != nil {
		t.Fatal(err)
	}
	if third.Info.PlanCacheHit {
		t.Error("different predicate bound hit the plan cache")
	}
}

// TestPlanCacheKeyNoDelimiterCollision: a column name containing the key
// delimiter must not collide with a multi-column shape — a collision would
// serve the cached two-column plan where the cold path returns an
// unknown-column error.
func TestPlanCacheKeyNoDelimiterCollision(t *testing.T) {
	srv := newServer(t, cacheConfig(2, 4, true))
	sess := srv.NewSession()
	good := matstore.Query{
		Output:  []string{tpch.ColShipdate, tpch.ColLinenum},
		Filters: []matstore.Filter{{Col: tpch.ColShipdate, Pred: matstore.LessThan(400)}},
	}
	if _, err := sess.Select(context.Background(), tpch.LineitemProj, good, matstore.LMParallel); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Output = []string{tpch.ColShipdate + "," + tpch.ColLinenum}
	if _, err := sess.Select(context.Background(), tpch.LineitemProj, bad, matstore.LMParallel); err == nil {
		t.Fatal("malformed column name collided with a cached plan and was served")
	}
}

// joinReq is the repeated-join shape the build-cache tests share.
func joinReq() matstore.JoinQuery {
	return matstore.JoinQuery{
		LeftKey:     tpch.ColCustkey,
		LeftPred:    matstore.LessThan(100),
		LeftOutput:  []string{tpch.ColOrderShipdate},
		RightKey:    tpch.ColCustkey,
		RightOutput: []string{tpch.ColNationcode},
	}
}

// TestBuildCacheHitOnRepeatedJoin: the second join over the same inner table
// reuses the retained partitioned hash side — and a different outer
// predicate still hits, because the build depends only on the inner side.
func TestBuildCacheHitOnRepeatedJoin(t *testing.T) {
	srv := newServer(t, cacheConfig(2, 4, true))
	sess := srv.NewSession()
	first, err := sess.Join(context.Background(), tpch.OrdersProj, tpch.CustomerProj, joinReq(), matstore.RightMaterialized)
	if err != nil {
		t.Fatal(err)
	}
	if first.Info.BuildCacheHit {
		t.Error("cold join reported a build-cache hit")
	}
	second, err := sess.Join(context.Background(), tpch.OrdersProj, tpch.CustomerProj, joinReq(), matstore.RightMaterialized)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Info.BuildCacheHit {
		t.Error("repeated join missed the build cache")
	}
	other := joinReq()
	other.LeftPred = matstore.LessThan(250)
	third, err := sess.Join(context.Background(), tpch.OrdersProj, tpch.CustomerProj, other, matstore.RightMaterialized)
	if err != nil {
		t.Fatal(err)
	}
	if !third.Info.BuildCacheHit {
		t.Error("join with different outer predicate missed the build cache")
	}
	// A different inner strategy builds a different table.
	fourth, err := sess.Join(context.Background(), tpch.OrdersProj, tpch.CustomerProj, joinReq(), matstore.RightSingleColumn)
	if err != nil {
		t.Fatal(err)
	}
	if fourth.Info.BuildCacheHit {
		t.Error("different right strategy shared a cached build")
	}
	st := srv.Stats().BuildCache
	if st.Hits < 2 || st.Misses != 2 {
		t.Errorf("build cache hits/misses = %d/%d, want >=2/2", st.Hits, st.Misses)
	}
	if st.Bytes <= 0 || st.Entries != 2 {
		t.Errorf("build cache bytes=%d entries=%d, want accounted bytes and 2 entries", st.Bytes, st.Entries)
	}
}

// TestBuildCacheInvalidationOnGenerationBump: invalidating the inner
// projection drops its cached builds, so the next join rebuilds.
func TestBuildCacheInvalidationOnGenerationBump(t *testing.T) {
	srv := newServer(t, cacheConfig(2, 4, true))
	sess := srv.NewSession()
	if _, err := sess.Join(context.Background(), tpch.OrdersProj, tpch.CustomerProj, joinReq(), matstore.RightMaterialized); err != nil {
		t.Fatal(err)
	}
	srv.InvalidateProjection(tpch.CustomerProj)
	st := srv.Stats().BuildCache
	if st.Invalidations != 1 || st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("after invalidation: %+v, want 1 invalidation and an empty cache", st)
	}
	out, err := sess.Join(context.Background(), tpch.OrdersProj, tpch.CustomerProj, joinReq(), matstore.RightMaterialized)
	if err != nil {
		t.Fatal(err)
	}
	if out.Info.BuildCacheHit {
		t.Error("join after invalidation hit a stale build")
	}
	// Invalidating an unrelated projection leaves the rebuilt entry alone.
	srv.InvalidateProjection(tpch.LineitemProj)
	out, err = sess.Join(context.Background(), tpch.OrdersProj, tpch.CustomerProj, joinReq(), matstore.RightMaterialized)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Info.BuildCacheHit {
		t.Error("unrelated invalidation evicted the customer build")
	}
}

// TestExplainThroughService: explain requests run through admission control
// and render both plan shapes.
func TestExplainThroughService(t *testing.T) {
	srv := newServer(t, cacheConfig(2, 4, true))
	sess := srv.NewSession()
	ex, info, err := sess.Explain(context.Background(), tpch.LineitemProj, matstore.Query{
		Output:  []string{tpch.ColShipdate},
		Filters: []matstore.Filter{{Col: tpch.ColShipdate, Pred: matstore.LessThan(400)}},
	}, matstore.LMParallel)
	if err != nil {
		t.Fatal(err)
	}
	if info.Workers < 1 || info.Workers > 2 {
		t.Errorf("explain granted %d workers", info.Workers)
	}
	if ex.Tree == "" {
		t.Error("empty explain tree")
	}
	jex, _, err := sess.ExplainJoin(context.Background(), tpch.OrdersProj, tpch.CustomerProj, joinReq(), matstore.RightMultiColumn)
	if err != nil {
		t.Fatal(err)
	}
	if jex.JoinStats == nil {
		t.Error("join explain carried no join stats")
	}
}
