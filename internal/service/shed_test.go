package service

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"matstore/internal/memory"
)

// TestWriteServiceErrorShed pins the shed-load HTTP contract: a governor shed
// (even wrapped) maps to 503 Service Unavailable with a Retry-After hint, the
// signal load balancers and retrying clients key off.
func TestWriteServiceErrorShed(t *testing.T) {
	rec := httptest.NewRecorder()
	writeServiceError(rec, fmt.Errorf("join orders⋈customer: %w", memory.ErrShed))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("shed status = %d, want 503", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", got)
	}
}
