// End-to-end tracing suite: "trace": true returns one span tree per
// request; through the coordinator, each shard's sub-tree (admission and
// per-plan-node spans) is grafted under the fan-out span with the trace id
// propagated via X-CS-Trace-Id; tracing disabled by default leaves responses
// byte-free of any trace key.
package service_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"matstore/internal/obs"
	"matstore/internal/service"
)

// postRaw POSTs body and returns the status, headers and raw response body.
func postRaw(t *testing.T, url, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, raw
}

// tracedResponse decodes just the trace envelope of a traced response.
type tracedResponse struct {
	Trace *obs.TraceJSON `json:"trace"`
}

// checkNesting walks the span tree asserting strict nesting: every
// wall-clocked span's duration covers the sum of its sequential children.
// Spans marked accum (synthetic per-plan-node spans rebuilt from worker-
// summed counters) are exempt and so are the children of spans marked
// parallel (concurrent siblings overlap, so their sum can exceed the
// parent's wall).
func checkNesting(t *testing.T, sp *obs.SpanJSON, path string) {
	t.Helper()
	if sp.Attrs["accum"] == true {
		return
	}
	var sum int64
	for _, c := range sp.Children {
		if c.Attrs["accum"] != true {
			sum += c.DurNS
		}
		checkNesting(t, c, path+"/"+c.Name)
	}
	if sp.Attrs["parallel"] != true && sum > sp.DurNS {
		t.Errorf("span %s: children sum %dns exceeds own wall %dns", path, sum, sp.DurNS)
	}
}

func findSpan(root *obs.SpanJSON, name string) *obs.SpanJSON {
	return root.Find(func(s *obs.SpanJSON) bool { return s.Name == name })
}

// childSpan returns root's DIRECT child by name (the engine sub-trees reuse
// phase names like "merge", so depth-first Find would cross into them).
func childSpan(root *obs.SpanJSON, name string) *obs.SpanJSON {
	for _, c := range root.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

func findSpanPrefix(root *obs.SpanJSON, prefix string) *obs.SpanJSON {
	return root.Find(func(s *obs.SpanJSON) bool { return strings.HasPrefix(s.Name, prefix) })
}

// TestTracedQuerySingleEngine: a traced /query returns one span tree with
// the admission, plan-build and execute phases plus synthetic per-plan-node
// spans, under the same id the X-CS-Trace-Id response header carries; the
// same request without trace returns no trace key at all (byte-identity
// with the pre-tracing wire format).
func TestTracedQuerySingleEngine(t *testing.T) {
	srv := newServer(t, cacheConfig(2, 4, true))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"projection":"lineitem","output":["shipdate","linenum"],"where":["shipdate<400"],"strategy":"lm-parallel","limit":5`
	status, hdr, raw := postRaw(t, ts.URL+"/query", body+`,"trace":true}`)
	if status != http.StatusOK {
		t.Fatalf("HTTP %d: %s", status, raw)
	}
	var tr tracedResponse
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Trace == nil || tr.Trace.Root == nil {
		t.Fatal("traced response has no trace")
	}
	if len(tr.Trace.ID) != 16 {
		t.Errorf("trace id %q: want 16 hex chars", tr.Trace.ID)
	}
	if got := hdr.Get("X-CS-Trace-Id"); got != tr.Trace.ID {
		t.Errorf("X-CS-Trace-Id header %q != trace id %q", got, tr.Trace.ID)
	}
	root := tr.Trace.Root
	if root.Name != "query" {
		t.Errorf("root span %q, want query", root.Name)
	}
	for _, phase := range []string{"admission", "plan.build", "execute", "morsels"} {
		if findSpan(root, phase) == nil {
			t.Errorf("no %q span in trace:\n%s", phase, raw)
		}
	}
	node := findSpanPrefix(root, "DS1 scan")
	if node == nil {
		t.Fatalf("no per-plan-node DS1 scan span in trace:\n%s", raw)
	}
	if node.Attrs["accum"] != true {
		t.Errorf("plan-node span not marked accum: %v", node.Attrs)
	}
	if _, ok := node.Attrs["rows"]; !ok {
		t.Errorf("plan-node span carries no rows attr: %v", node.Attrs)
	}
	if _, ok := node.Attrs["model_us"]; !ok {
		t.Errorf("plan-node span carries no model_us attr (traced runs annotate): %v", node.Attrs)
	}
	checkNesting(t, root, root.Name)

	// Disabled by default: no trace key anywhere in the response bytes.
	status, _, raw = postRaw(t, ts.URL+"/query", body+`}`)
	if status != http.StatusOK {
		t.Fatalf("HTTP %d: %s", status, raw)
	}
	if bytes.Contains(raw, []byte(`"trace"`)) {
		t.Errorf("untraced response contains a trace key: %s", raw)
	}
}

// TestTracedErrorCarriesTraceID: error responses echo the trace id in the
// body so failures stay correlatable.
func TestTracedErrorCarriesTraceID(t *testing.T) {
	srv := newServer(t, cacheConfig(2, 4, true))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, hdr, raw := postRaw(t, ts.URL+"/query", `{"projection":"nope"}`)
	if status != http.StatusBadRequest {
		t.Fatalf("HTTP %d, want 400: %s", status, raw)
	}
	var e map[string]string
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatal(err)
	}
	if e["trace_id"] == "" || e["trace_id"] != hdr.Get("X-CS-Trace-Id") {
		t.Errorf("error body trace_id %q, header %q", e["trace_id"], hdr.Get("X-CS-Trace-Id"))
	}
}

// TestTracePropagationCoordinator: a traced query through a 2-shard
// coordinator returns ONE span tree — coordinator fan-out spans with each
// shard's own sub-tree (admission + per-plan-node spans) grafted beneath
// them under the SAME propagated trace id, plus the merge span.
func TestTracePropagationCoordinator(t *testing.T) {
	f := newFleet(t, 2, service.CoordinatorConfig{})

	// The wide predicate keeps every shard (no zone-map pruning) while still
	// planting a DS1 scan node in each shard's plan.
	status, hdr, raw := postRaw(t, f.URL+"/query",
		`{"projection":"lineitem","output":["shipdate","linenum"],"where":["shipdate<999999"],"strategy":"lm-parallel","limit":5,"trace":true}`)
	if status != http.StatusOK {
		t.Fatalf("HTTP %d: %s", status, raw)
	}
	var tr tracedResponse
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Trace == nil || tr.Trace.Root == nil {
		t.Fatal("traced coordinator response has no trace")
	}
	root := tr.Trace.Root
	if root.Name != "coordinator.query" {
		t.Errorf("root span %q, want coordinator.query", root.Name)
	}
	if hdr.Get("X-CS-Trace-Id") != tr.Trace.ID {
		t.Errorf("header id %q != trace id %q", hdr.Get("X-CS-Trace-Id"), tr.Trace.ID)
	}
	fanout := findSpan(root, "fanout")
	if fanout == nil {
		t.Fatalf("no fanout span:\n%s", raw)
	}
	if len(fanout.Children) != 2 {
		t.Fatalf("fanout has %d shard spans, want 2", len(fanout.Children))
	}
	for _, shard := range fanout.Children {
		if !strings.HasPrefix(shard.Name, "shard ") {
			t.Errorf("fanout child %q, want shard k", shard.Name)
		}
		// The shard answered under the propagated id: its sub-tree's trace
		// id (recorded at graft time) must match the coordinator's.
		if got := shard.Attrs["shard_trace_id"]; got != tr.Trace.ID {
			t.Errorf("%s sub-tree trace id %v, want %q", shard.Name, got, tr.Trace.ID)
		}
		sub := findSpan(shard, "query")
		if sub == nil {
			t.Fatalf("%s has no grafted engine sub-tree:\n%s", shard.Name, raw)
		}
		if findSpan(sub, "admission") == nil {
			t.Errorf("%s sub-tree has no admission span", shard.Name)
		}
		if findSpanPrefix(sub, "DS1 scan") == nil {
			t.Errorf("%s sub-tree has no per-plan-node span", shard.Name)
		}
	}
	if childSpan(root, "merge") == nil {
		t.Errorf("no merge span:\n%s", raw)
	}
	checkNesting(t, root, root.Name)

	// Disabled by default, through the fleet too.
	status, _, raw = postRaw(t, f.URL+"/query",
		`{"projection":"lineitem","output":["shipdate","linenum"],"strategy":"lm-parallel","limit":5}`)
	if status != http.StatusOK {
		t.Fatalf("HTTP %d: %s", status, raw)
	}
	if bytes.Contains(raw, []byte(`"trace"`)) {
		t.Errorf("untraced fleet response contains a trace key: %s", raw)
	}
}

// TestTracedCopartitionedJoin: the co-partitioned join fan-out (both sides
// hash-partitioned on custkey) carries each shard's join.build span and the
// row-id merge span in one tree.
func TestTracedCopartitionedJoin(t *testing.T) {
	f := newKeypartFleet(t, 2, service.CoordinatorConfig{})

	status, _, raw := postRaw(t, f.URL+"/join",
		`{"left":"orders","right":"customer","leftkey":"custkey","rightkey":"custkey","leftout":["shipdate"],"rightout":["nationcode"],"limit":5,"trace":true}`)
	if status != http.StatusOK {
		t.Fatalf("HTTP %d: %s", status, raw)
	}
	var tr tracedResponse
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Trace == nil || tr.Trace.Root == nil {
		t.Fatal("traced join has no trace")
	}
	root := tr.Trace.Root
	if root.Name != "coordinator.join" {
		t.Errorf("root span %q, want coordinator.join", root.Name)
	}
	fanout := findSpan(root, "fanout")
	if fanout == nil {
		t.Fatalf("no fanout span:\n%s", raw)
	}
	if fanout.Attrs["copartitioned"] != true {
		t.Errorf("fanout not marked copartitioned: %v", fanout.Attrs)
	}
	if got := len(fanout.Children); got != 2 {
		t.Fatalf("fanout has %d shard spans, want 2", got)
	}
	for _, shard := range fanout.Children {
		if findSpan(shard, "join.build") == nil {
			t.Errorf("%s sub-tree has no join.build span", shard.Name)
		}
	}
	merge := childSpan(root, "merge")
	if merge == nil {
		t.Fatal("no merge span")
	}
	if merge.Attrs["kind"] != "rowid_kway" {
		t.Errorf("merge kind %v, want rowid_kway", merge.Attrs["kind"])
	}
	checkNesting(t, root, root.Name)
}

// TestMetricsEndpoint: /metrics on a live engine serves strict Prometheus
// text (pinned by the parser round-trip) including the request latency
// histogram series; the coordinator's adds the shard request counters.
func TestMetricsEndpoint(t *testing.T) {
	srv := newServer(t, cacheConfig(2, 4, true))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var q service.QueryResponse
	postJSON(t, ts.URL+"/query",
		`{"projection":"lineitem","output":["shipdate"],"where":["shipdate<400"],"strategy":"lm-parallel","limit":3}`, &q)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	samples, err := obs.ParsePrometheus(string(text))
	if err != nil {
		t.Fatalf("/metrics is not valid Prometheus text: %v\n%s", err, text)
	}
	names := map[string]bool{}
	for _, s := range samples {
		names[s.Name] = true
	}
	for _, want := range []string{"cs_requests_total", "cs_request_seconds_bucket",
		"cs_request_seconds_count", "cs_admission_queue_seconds_bucket",
		"cs_grant_workers_count", "cs_uptime_seconds",
		"cs_build_info", "cs_cache_events_total"} {
		if !names[want] {
			t.Errorf("/metrics missing series %s", want)
		}
	}
	if !strings.Contains(string(text), `cs_request_seconds_bucket{endpoint="query",outcome="ok",le="+Inf"}`) {
		t.Errorf("no query latency histogram bucket in /metrics:\n%s", text)
	}

	// Coordinator /metrics: shard request counters after one fan-out.
	f := newFleet(t, 2, service.CoordinatorConfig{})
	postJSON(t, f.URL+"/query",
		`{"projection":"lineitem","output":["shipdate"],"strategy":"lm-parallel","limit":3}`, &q)
	resp2, err := http.Get(f.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	ctext, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ParsePrometheus(string(ctext)); err != nil {
		t.Fatalf("coordinator /metrics invalid: %v", err)
	}
	for _, want := range []string{`cs_shard_requests{outcome="total"}`,
		`cs_shard_request_seconds_bucket{shard="0"`, "cs_coordinator_routing"} {
		if !strings.Contains(string(ctext), want) {
			t.Errorf("coordinator /metrics missing %s:\n%s", want, ctext)
		}
	}
}
