package storage

import (
	"path/filepath"
	"testing"

	"matstore/internal/buffer"
	"matstore/internal/encoding"
	"matstore/internal/positions"
)

// BenchmarkGather compares the batched block-pinned gather against the
// retained per-position ValueAt path on a warm buffer pool: same positions,
// same values out. The batched path's allocations are O(blocks touched) —
// one loader closure per pinned block plus the output slice — where the
// per-position path allocates a loader closure per position (PR 2's
// acceptance target).
func BenchmarkGather(b *testing.B) {
	const n = 40 * encoding.PlainBlockCap // 40 blocks
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i % 977)
	}
	dir := b.TempDir()
	for _, enc := range []encoding.Kind{encoding.Plain, encoding.RLE} {
		path := filepath.Join(dir, enc.String()+".col")
		w, err := NewColumnWriter(path, enc)
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range vals {
			if err := w.Append(v); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		c, err := Open(path, buffer.New(0))
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()

		// Scattered short runs: ~12.5% of positions, touching every block.
		var ps positions.Ranges
		for p := int64(0); p+8 < n; p += 64 {
			ps = append(ps, positions.Range{Start: p, End: p + 8})
		}
		count := ps.Count()
		if _, err := c.GatherAt(ps, nil); err != nil { // warm the pool
			b.Fatal(err)
		}

		b.Run(enc.String()+"/batched", func(b *testing.B) {
			var dst []int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				dst, err = c.GatherAt(ps, dst[:0])
				if err != nil {
					b.Fatal(err)
				}
				if int64(len(dst)) != count {
					b.Fatal("short gather")
				}
			}
		})
		b.Run(enc.String()+"/per-position", func(b *testing.B) {
			dst := make([]int64, 0, count)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = dst[:0]
				for _, r := range ps {
					for p := r.Start; p < r.End; p++ {
						v, err := c.ValueAt(p)
						if err != nil {
							b.Fatal(err)
						}
						dst = append(dst, v)
					}
				}
				if int64(len(dst)) != count {
					b.Fatal("short gather")
				}
			}
		})
	}
}

// BenchmarkGatherUnordered measures the join deferred-fetch shape: shuffled,
// repeated positions against the per-position jumps they replace.
func BenchmarkGatherUnordered(b *testing.B) {
	const n = 10 * encoding.PlainBlockCap
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i % 977)
	}
	path := filepath.Join(b.TempDir(), "plain.col")
	w, err := NewColumnWriter(path, encoding.Plain)
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range vals {
		if err := w.Append(v); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	c, err := Open(path, buffer.New(0))
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	ps := make([]int64, 1<<14)
	s := uint64(1)
	for i := range ps {
		s = s*6364136223846793005 + 1442695040888963407
		ps[i] = int64(s % n)
	}
	if _, err := c.GatherUnordered(ps, nil); err != nil { // warm the pool
		b.Fatal(err)
	}

	b.Run("batched", func(b *testing.B) {
		var dst []int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			dst, err = c.GatherUnordered(ps, dst[:0])
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("per-position", func(b *testing.B) {
		dst := make([]int64, 0, len(ps))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst = dst[:0]
			for _, p := range ps {
				v, err := c.ValueAt(p)
				if err != nil {
					b.Fatal(err)
				}
				dst = append(dst, v)
			}
		}
	})
}
