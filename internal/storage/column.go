// Package storage implements the on-disk layout of the C-Store substrate:
// each column of a projection lives in its own file as a sequence of 64KB
// blocks (Section 1.1 of the paper), with a fixed header page and a block
// index footer. Reads go through a buffer pool; the reader assembles
// mini-column windows (still compressed) over arbitrary position ranges,
// touching only the blocks that overlap the window — which is what makes
// block-skipping in pipelined plans possible.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"

	"matstore/internal/buffer"
	"matstore/internal/encoding"
	"matstore/internal/kernels"
	"matstore/internal/positions"
	"matstore/internal/pred"
)

const (
	// HeaderSize is the fixed size of the file header page.
	HeaderSize = 4096

	fileMagic = "MATSCOL1"

	// FormatVersion is the column-file format version. Version 2 added
	// per-block zone (min/max) metadata and the sorted flag.
	FormatVersion = 2

	// MaxBVDistinct bounds the number of distinct values a bit-vector
	// column may hold; beyond this the encoding is pathological (the paper
	// uses it for 7-value LINENUM and 3-value RETURNFLAG).
	MaxBVDistinct = 4096
)

// ErrCorruptFile is returned for structurally invalid column files.
var ErrCorruptFile = errors.New("storage: corrupt column file")

// BlockInfo is one entry of the block index footer.
type BlockInfo struct {
	// Cover is the position range (plain/RLE) or bit range (bit-vector)
	// spanned by the block.
	Cover positions.Range
	// Value is the distinct value a bit-vector block belongs to.
	Value int64
	// Count is the number of values (plain), triples (RLE) or bits (BV).
	Count uint32
	// MinV and MaxV bound the values inside the block (zone map). For
	// bit-vector blocks both equal Value. They let predicates over sorted
	// columns derive position ranges from the index without reading the
	// values (Section 2.1.1 of the paper).
	MinV int64
	MaxV int64
}

type fileHeader struct {
	enc       encoding.Kind
	sorted    bool
	tuples    int64
	blocks    int64
	minV      int64
	maxV      int64
	distinct  int64
	avgRunLen float64
	footerOff int64
}

func (h fileHeader) marshal() []byte {
	buf := make([]byte, HeaderSize)
	copy(buf, fileMagic)
	binary.LittleEndian.PutUint32(buf[8:], FormatVersion)
	buf[12] = byte(h.enc)
	if h.sorted {
		buf[13] = 1
	}
	binary.LittleEndian.PutUint64(buf[16:], uint64(h.tuples))
	binary.LittleEndian.PutUint64(buf[24:], uint64(h.blocks))
	binary.LittleEndian.PutUint64(buf[32:], uint64(h.minV))
	binary.LittleEndian.PutUint64(buf[40:], uint64(h.maxV))
	binary.LittleEndian.PutUint64(buf[48:], uint64(h.distinct))
	binary.LittleEndian.PutUint64(buf[56:], uint64(int64(h.avgRunLen*1e6)))
	binary.LittleEndian.PutUint64(buf[64:], uint64(h.footerOff))
	return buf
}

func unmarshalHeader(buf []byte) (fileHeader, error) {
	if len(buf) < HeaderSize || string(buf[:8]) != fileMagic {
		return fileHeader{}, fmt.Errorf("%w: bad magic", ErrCorruptFile)
	}
	if v := binary.LittleEndian.Uint32(buf[8:]); v != FormatVersion {
		return fileHeader{}, fmt.Errorf("%w: version %d", ErrCorruptFile, v)
	}
	return fileHeader{
		enc:       encoding.Kind(buf[12]),
		sorted:    buf[13] == 1,
		tuples:    int64(binary.LittleEndian.Uint64(buf[16:])),
		blocks:    int64(binary.LittleEndian.Uint64(buf[24:])),
		minV:      int64(binary.LittleEndian.Uint64(buf[32:])),
		maxV:      int64(binary.LittleEndian.Uint64(buf[40:])),
		distinct:  int64(binary.LittleEndian.Uint64(buf[48:])),
		avgRunLen: float64(int64(binary.LittleEndian.Uint64(buf[56:]))) / 1e6,
		footerOff: int64(binary.LittleEndian.Uint64(buf[64:])),
	}, nil
}

const footerEntrySize = 48

func marshalFooter(index []BlockInfo) []byte {
	buf := make([]byte, len(index)*footerEntrySize)
	for i, bi := range index {
		off := i * footerEntrySize
		binary.LittleEndian.PutUint64(buf[off:], uint64(bi.Cover.Start))
		binary.LittleEndian.PutUint64(buf[off+8:], uint64(bi.Cover.End))
		binary.LittleEndian.PutUint64(buf[off+16:], uint64(bi.Value))
		binary.LittleEndian.PutUint32(buf[off+24:], bi.Count)
		binary.LittleEndian.PutUint64(buf[off+32:], uint64(bi.MinV))
		binary.LittleEndian.PutUint64(buf[off+40:], uint64(bi.MaxV))
	}
	return buf
}

func unmarshalFooter(buf []byte, n int64) ([]BlockInfo, error) {
	if int64(len(buf)) < n*footerEntrySize {
		return nil, fmt.Errorf("%w: truncated footer", ErrCorruptFile)
	}
	index := make([]BlockInfo, n)
	for i := range index {
		off := i * footerEntrySize
		index[i] = BlockInfo{
			Cover: positions.Range{
				Start: int64(binary.LittleEndian.Uint64(buf[off:])),
				End:   int64(binary.LittleEndian.Uint64(buf[off+8:])),
			},
			Value: int64(binary.LittleEndian.Uint64(buf[off+16:])),
			Count: binary.LittleEndian.Uint32(buf[off+24:]),
			MinV:  int64(binary.LittleEndian.Uint64(buf[off+32:])),
			MaxV:  int64(binary.LittleEndian.Uint64(buf[off+40:])),
		}
	}
	return index, nil
}

// Column is an open, read-only column file.
type Column struct {
	path  string
	f     *os.File
	hdr   fileHeader
	index []BlockInfo
	// byValue maps each distinct value of a bit-vector column to its block
	// indexes, ordered by bit position.
	byValue map[int64][]int
	values  []int64
	pool    *buffer.Pool
	fid     uint64
}

// Open opens a column file for reading through pool.
func Open(path string, pool *buffer.Pool) (*Column, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	hbuf := make([]byte, HeaderSize)
	if _, err := f.ReadAt(hbuf, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: %v", ErrCorruptFile, err)
	}
	hdr, err := unmarshalHeader(hbuf)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	fbuf := make([]byte, hdr.blocks*footerEntrySize)
	if _, err := f.ReadAt(fbuf, hdr.footerOff); err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w: footer: %v", path, ErrCorruptFile, err)
	}
	index, err := unmarshalFooter(fbuf, hdr.blocks)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	c := &Column{path: path, f: f, hdr: hdr, index: index, pool: pool, fid: pool.RegisterFile()}
	if hdr.enc == encoding.BitVector {
		c.byValue = make(map[int64][]int)
		for i, bi := range index {
			if _, seen := c.byValue[bi.Value]; !seen {
				c.values = append(c.values, bi.Value)
			}
			c.byValue[bi.Value] = append(c.byValue[bi.Value], i)
		}
		sort.Slice(c.values, func(i, j int) bool { return c.values[i] < c.values[j] })
	}
	return c, nil
}

// Close releases the file handle.
func (c *Column) Close() error { return c.f.Close() }

// Path returns the file path.
func (c *Column) Path() string { return c.path }

// Encoding returns the column's encoding kind.
func (c *Column) Encoding() encoding.Kind { return c.hdr.enc }

// TupleCount returns the logical number of values in the column (the ||Ci||
// model term).
func (c *Column) TupleCount() int64 { return c.hdr.tuples }

// NumBlocks returns the number of data blocks (the |Ci| model term).
func (c *Column) NumBlocks() int { return int(c.hdr.blocks) }

// MinMax returns the column's value bounds (for selectivity estimation).
func (c *Column) MinMax() (int64, int64) { return c.hdr.minV, c.hdr.maxV }

// Distinct returns the number of distinct values.
func (c *Column) Distinct() int64 { return c.hdr.distinct }

// AvgRunLen returns the mean run length of equal consecutive values (the RL
// model term; 1 for unsorted data).
func (c *Column) AvgRunLen() float64 { return c.hdr.avgRunLen }

// Extent returns the full position range of the column.
func (c *Column) Extent() positions.Range { return positions.Range{Start: 0, End: c.hdr.tuples} }

// DistinctValues returns the sorted distinct values of a bit-vector column.
func (c *Column) DistinctValues() []int64 { return c.values }

func (c *Column) blockOffset(i int) int64 { return HeaderSize + int64(i)*encoding.BlockSize }

// block fetches and decodes block i through the buffer pool.
func (c *Column) block(i int) (any, error) {
	return c.pool.Get(buffer.Key{File: c.fid, Block: i}, c.blockLoader(i))
}

// blockLoader returns the read-and-decode miss handler for block i, shared
// by the unpinned (Get) and pinned (Pin) fetch paths.
func (c *Column) blockLoader(i int) func() (any, int64, error) {
	return func() (any, int64, error) {
		buf := make([]byte, encoding.BlockSize)
		if _, err := c.f.ReadAt(buf, c.blockOffset(i)); err != nil {
			return nil, 0, fmt.Errorf("%s block %d: %w", c.path, i, err)
		}
		dec, err := encoding.DecodeBlock(buf)
		if err != nil {
			return nil, 0, fmt.Errorf("%s block %d: %w", c.path, i, err)
		}
		return dec, encoding.BlockSize, nil
	}
}

// blocksOverlapping returns the indexes of plain/RLE blocks whose cover
// intersects r. The index is sorted by Cover.Start.
func (c *Column) blocksOverlapping(r positions.Range) []int {
	lo := sort.Search(len(c.index), func(i int) bool { return c.index[i].Cover.End > r.Start })
	var out []int
	for i := lo; i < len(c.index) && c.index[i].Cover.Start < r.End; i++ {
		out = append(out, i)
	}
	return out
}

// bvBlocksOverlapping returns block indexes of value's bit-string
// intersecting the bit range r. A value's blocks tile [0, tuples) in
// ascending bit order, so the first overlap is found by binary search.
func (c *Column) bvBlocksOverlapping(value int64, r positions.Range) []int {
	blocks := c.byValue[value]
	lo := sort.Search(len(blocks), func(j int) bool { return c.index[blocks[j]].Cover.End > r.Start })
	var out []int
	for _, i := range blocks[lo:] {
		if c.index[i].Cover.Start >= r.End {
			break
		}
		out = append(out, i)
	}
	return out
}

// Window assembles a mini-column over r (clipped to the column extent),
// reading only the blocks that overlap. For bit-vector columns r.Start must
// be 64-aligned. An empty window over a valid range returns a mini-column
// with an empty covering range and no error.
func (c *Column) Window(r positions.Range) (encoding.MiniColumn, error) {
	r = r.Intersect(c.Extent())
	switch c.hdr.enc {
	case encoding.Plain:
		return c.plainWindow(r)
	case encoding.RLE:
		return c.rleWindow(r)
	case encoding.BitVector:
		return c.bvWindow(r)
	default:
		return nil, fmt.Errorf("storage: unsupported encoding %v", c.hdr.enc)
	}
}

func (c *Column) plainWindow(r positions.Range) (encoding.MiniColumn, error) {
	m := encoding.NewPlainMini(r)
	if r.Empty() {
		return m, nil
	}
	for _, i := range c.blocksOverlapping(r) {
		dec, err := c.block(i)
		if err != nil {
			return nil, err
		}
		pb, ok := dec.(*encoding.PlainBlock)
		if !ok {
			return nil, fmt.Errorf("%s block %d: %w: not a plain block", c.path, i, ErrCorruptFile)
		}
		o := pb.Cover().Intersect(r)
		m.AddSegment(o.Start, pb.Vals[o.Start-pb.Start:o.End-pb.Start])
	}
	return m, nil
}

func (c *Column) rleWindow(r positions.Range) (encoding.MiniColumn, error) {
	if r.Empty() {
		return encoding.NewRLEMini(r, nil), nil
	}
	var triples []encoding.Triple
	for _, i := range c.blocksOverlapping(r) {
		dec, err := c.block(i)
		if err != nil {
			return nil, err
		}
		rb, ok := dec.(*encoding.RLEBlock)
		if !ok {
			return nil, fmt.Errorf("%s block %d: %w: not an RLE block", c.path, i, ErrCorruptFile)
		}
		for _, t := range rb.Triples {
			o := t.Cover().Intersect(r)
			if o.Empty() {
				continue
			}
			triples = append(triples, encoding.Triple{Value: t.Value, Start: o.Start, Len: o.Len()})
		}
	}
	return encoding.NewRLEMini(r, triples), nil
}

func (c *Column) bvWindow(r positions.Range) (encoding.MiniColumn, error) {
	if r.Start%64 != 0 {
		return nil, fmt.Errorf("storage: bit-vector window start %d not 64-aligned", r.Start)
	}
	if r.Empty() {
		return encoding.NewBVMini(r, nil, nil), nil
	}
	nw := (r.Len() + 63) / 64
	bms := make([]*positions.Bitmap, len(c.values))
	for vi, v := range c.values {
		words := make([]uint64, nw)
		for _, i := range c.bvBlocksOverlapping(v, r) {
			dec, err := c.block(i)
			if err != nil {
				return nil, err
			}
			bb, ok := dec.(*encoding.BVBlock)
			if !ok {
				return nil, fmt.Errorf("%s block %d: %w: not a BV block", c.path, i, ErrCorruptFile)
			}
			o := bb.Cover().Intersect(r)
			if o.Empty() {
				continue
			}
			// Both o.Start-r.Start and o.Start-bb.StartBit are 64-aligned
			// (chunk starts and block starts are multiples of 64).
			dst := (o.Start - r.Start) / 64
			src := (o.Start - bb.StartBit) / 64
			n := (o.Len() + 63) / 64
			copy(words[dst:dst+n], bb.Words[src:src+n])
		}
		// Clear bits beyond the window end.
		if tail := r.Len() % 64; tail != 0 {
			words[nw-1] &= (1 << uint(tail)) - 1
		}
		bms[vi] = positions.BitmapFromWords(r.Start, r.Len(), words)
	}
	return encoding.NewBVMini(r, c.values, bms), nil
}

// Sorted reports whether the column's values are globally non-decreasing
// (e.g. the primary sort-key column of a projection).
func (c *Column) Sorted() bool { return c.hdr.sorted }

// ZonePositions computes the positions within window r whose values satisfy
// p, using the per-block min/max zone metadata of the block index: blocks
// whose value range lies entirely inside the predicate's accepted interval
// contribute their whole cover as a position range *without being read*,
// blocks entirely outside are skipped, and only straddling blocks are read
// and filtered. This realizes Section 2.1.1's observation that positions
// matching a predicate can often be derived from an index so that "the
// original column values never have to be accessed".
//
// It applies to plain and RLE columns with interval predicates; for other
// cases (bit-vector encoding, non-interval predicates) it falls back to
// reading and filtering the window. The returned bool reports whether the
// zone fast path was used.
//
// Straddling blocks run the compiled predicate kernel block-locally: the
// decoded block's values (or RLE triples) are filtered in place, without
// assembling a mini-column window around them — the only work besides the
// block fetch is the comparison loop itself.
func (c *Column) ZonePositions(r positions.Range, p pred.Predicate) (positions.Set, bool, error) {
	lo, hi, intervalOK := p.Interval()
	if !intervalOK || c.hdr.enc == encoding.BitVector {
		mc, err := c.Window(r)
		if err != nil {
			return nil, false, err
		}
		return mc.Filter(p), false, nil
	}
	r = r.Intersect(c.Extent())
	b := positions.NewBuilder(r)
	var kern pred.Kernel // compiled lazily: many calls never see a straddler
	for _, i := range c.blocksOverlapping(r) {
		bi := c.index[i]
		if bi.MinV > hi || bi.MaxV < lo {
			continue // zone disjoint from predicate: skip without reading
		}
		window := bi.Cover.Intersect(r)
		if bi.MinV >= lo && bi.MaxV <= hi {
			// Zone entirely accepted: positions derived from the index.
			b.AddRange(window)
			continue
		}
		// Straddling block: fetch and filter just this block, in place.
		dec, err := c.block(i)
		if err != nil {
			return nil, true, err
		}
		switch blk := dec.(type) {
		case *encoding.PlainBlock:
			if kern == nil {
				kern = pred.Compile(p)
			}
			zoneFilterPlainBlock(b, blk, window, kern)
		case *encoding.RLEBlock:
			for _, t := range blk.Triples {
				o := t.Cover().Intersect(window)
				if !o.Empty() && t.Value >= lo && t.Value <= hi {
					b.AddRange(o)
				}
			}
		default:
			return nil, true, fmt.Errorf("%s block %d: %w: unexpected block type", c.path, i, ErrCorruptFile)
		}
	}
	return b.Build(), true, nil
}

// zoneFilterPlainBlock runs the compiled kernel over the window's slice of a
// plain block, emitting matches into a block-local bitmap whose runs feed
// the builder.
func zoneFilterPlainBlock(b *positions.Builder, blk *encoding.PlainBlock, window positions.Range, kern pred.Kernel) {
	base := window.Start &^ 63
	bm := positions.NewBitmap(base, window.End-base)
	kernels.FilterIntoBitmap(bm, window.Start, blk.Vals[window.Start-blk.Start:window.End-blk.Start], kern)
	it := bm.Runs()
	for {
		run, ok := it.Next()
		if !ok {
			return
		}
		b.AddRange(run)
	}
}

// ValueAt reads the single value at pos, touching only the block(s)
// containing it. For bit-vector columns this must probe each distinct
// value's bit-string — the cost asymmetry the paper notes for DS3 over
// bit-vector data.
func (c *Column) ValueAt(pos int64) (int64, error) {
	if pos < 0 || pos >= c.hdr.tuples {
		return 0, fmt.Errorf("storage: position %d out of range [0,%d)", pos, c.hdr.tuples)
	}
	switch c.hdr.enc {
	case encoding.Plain:
		i := c.blockContaining(pos)
		dec, err := c.block(i)
		if err != nil {
			return 0, err
		}
		pb := dec.(*encoding.PlainBlock)
		return pb.Vals[pos-pb.Start], nil
	case encoding.RLE:
		i := c.blockContaining(pos)
		dec, err := c.block(i)
		if err != nil {
			return 0, err
		}
		rb := dec.(*encoding.RLEBlock)
		ts := rb.Triples
		j := sort.Search(len(ts), func(j int) bool { return ts[j].End() > pos })
		return ts[j].Value, nil
	case encoding.BitVector:
		// Each distinct value's blocks tile [0, tuples) in ascending bit
		// order, so the block holding pos in that value's bit-string is found
		// by binary search — one block probe per distinct value instead of a
		// linear scan over all values × blocks.
		for _, v := range c.values {
			blocks := c.byValue[v]
			j := sort.Search(len(blocks), func(j int) bool { return c.index[blocks[j]].Cover.End > pos })
			if j == len(blocks) || !c.index[blocks[j]].Cover.Contains(pos) {
				continue
			}
			dec, err := c.block(blocks[j])
			if err != nil {
				return 0, err
			}
			bb := dec.(*encoding.BVBlock)
			bit := pos - bb.StartBit
			if bb.Words[bit>>6]&(1<<uint(bit&63)) != 0 {
				return v, nil
			}
		}
		return 0, fmt.Errorf("%s: %w: position %d set in no bit-string", c.path, ErrCorruptFile, pos)
	default:
		return 0, fmt.Errorf("storage: unsupported encoding %v", c.hdr.enc)
	}
}

func (c *Column) blockContaining(pos int64) int {
	return sort.Search(len(c.index), func(i int) bool { return c.index[i].Cover.End > pos })
}
