package storage

import (
	"fmt"
	"slices"
	"sort"

	"matstore/internal/buffer"
	"matstore/internal/encoding"
	"matstore/internal/kernels"
	"matstore/internal/positions"
)

// This file implements the batched gather path: fetching the values at a set
// of positions by grouping position runs by block, pinning each decoded
// block once through the buffer pool (one lock round-trip per block instead
// of one per position, as the per-position ValueAt path pays), and copying
// with tight per-encoding loops. It is the storage half of the kernels
// layer: DS3 re-access, DS4 widening, and the join's deferred-fetch
// post-pass all land here.

// pinBlock fetches and decodes block i through the buffer pool, pinned
// against eviction until unpinBlock.
func (c *Column) pinBlock(i int) (any, error) {
	return c.pool.Pin(buffer.Key{File: c.fid, Block: i}, c.blockLoader(i))
}

func (c *Column) unpinBlock(i int) {
	c.pool.Unpin(buffer.Key{File: c.fid, Block: i})
}

// GatherAt appends to dst the values at every position of ps, in position
// order, and returns the extended slice. Positions outside the column extent
// are ignored. Unlike per-position ValueAt, the block containing a run is
// located once (binary search, then monotone advance), pinned once, and
// copied from with a tight per-encoding loop, so the buffer-pool cost is
// O(blocks touched) rather than O(positions).
func (c *Column) GatherAt(ps positions.Set, dst []int64) ([]int64, error) {
	switch c.hdr.enc {
	case encoding.Plain:
		return c.gatherPlain(ps, dst)
	case encoding.RLE:
		return c.gatherRLE(ps, dst)
	case encoding.BitVector:
		return c.gatherBV(ps, dst)
	default:
		return dst, fmt.Errorf("storage: unsupported encoding %v", c.hdr.enc)
	}
}

func (c *Column) gatherPlain(ps positions.Set, dst []int64) ([]int64, error) {
	it := ps.Runs()
	bi := -1
	pinned := -1
	var pb *encoding.PlainBlock
	defer func() {
		if pinned >= 0 {
			c.unpinBlock(pinned)
		}
	}()
	for {
		r, ok := it.Next()
		if !ok {
			return dst, nil
		}
		r = r.Intersect(c.Extent())
		for pos := r.Start; pos < r.End; {
			if bi < 0 {
				bi = c.blockContaining(pos)
			} else {
				for c.index[bi].Cover.End <= pos {
					bi++
				}
			}
			if bi != pinned {
				if pinned >= 0 {
					c.unpinBlock(pinned)
					pinned = -1
				}
				dec, err := c.pinBlock(bi)
				if err != nil {
					return dst, err
				}
				pinned = bi
				var isPlain bool
				if pb, isPlain = dec.(*encoding.PlainBlock); !isPlain {
					return dst, fmt.Errorf("%s block %d: %w: not a plain block", c.path, bi, ErrCorruptFile)
				}
			}
			end := r.End
			if pe := pb.Start + int64(len(pb.Vals)); pe < end {
				end = pe
			}
			dst = append(dst, pb.Vals[pos-pb.Start:end-pb.Start]...)
			pos = end
		}
	}
}

func (c *Column) gatherRLE(ps positions.Set, dst []int64) ([]int64, error) {
	it := ps.Runs()
	bi := -1
	pinned := -1
	var rb *encoding.RLEBlock
	defer func() {
		if pinned >= 0 {
			c.unpinBlock(pinned)
		}
	}()
	for {
		r, ok := it.Next()
		if !ok {
			return dst, nil
		}
		r = r.Intersect(c.Extent())
		for pos := r.Start; pos < r.End; {
			if bi < 0 {
				bi = c.blockContaining(pos)
			} else {
				for c.index[bi].Cover.End <= pos {
					bi++
				}
			}
			if bi != pinned {
				if pinned >= 0 {
					c.unpinBlock(pinned)
					pinned = -1
				}
				dec, err := c.pinBlock(bi)
				if err != nil {
					return dst, err
				}
				pinned = bi
				var isRLE bool
				if rb, isRLE = dec.(*encoding.RLEBlock); !isRLE {
					return dst, fmt.Errorf("%s block %d: %w: not an RLE block", c.path, bi, ErrCorruptFile)
				}
			}
			end := r.End
			if be := c.index[bi].Cover.End; be < end {
				end = be
			}
			// One binary search per (run, block) segment, then run-at-a-time
			// emission: each overlapping triple contributes value × overlap.
			ts := rb.Triples
			tj := sort.Search(len(ts), func(j int) bool { return ts[j].End() > pos })
			for pos < end {
				t := ts[tj]
				o := t.Cover().Intersect(positions.Range{Start: pos, End: end})
				for k := int64(0); k < o.Len(); k++ {
					dst = append(dst, t.Value)
				}
				pos = o.End
				tj++
			}
		}
	}
}

func (c *Column) gatherBV(ps positions.Set, dst []int64) ([]int64, error) {
	// Materialize the run decomposition once, with output offsets: the
	// gather inverts the bit-vector encoding value-by-value, so every
	// (value, block, run) triple needs the rank of its first position.
	var runs positions.Ranges
	var offs []int64
	var total int64
	it := ps.Runs()
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		r = r.Intersect(c.Extent())
		if r.Empty() {
			continue
		}
		runs = append(runs, r)
		offs = append(offs, total)
		total += r.Len()
	}
	if total == 0 {
		return dst, nil
	}
	covering := positions.Range{Start: runs[0].Start, End: runs[len(runs)-1].End}
	start := len(dst)
	dst = append(dst, make([]int64, total)...)
	out := dst[start:]
	// Every position belongs to exactly one distinct value's bit-string, so
	// scattering each value over its set bits fills every output slot once.
	for _, v := range c.values {
		blocks := c.byValue[v]
		bj := sort.Search(len(blocks), func(j int) bool { return c.index[blocks[j]].Cover.End > covering.Start })
		ri := 0
		for ; bj < len(blocks); bj++ {
			bi := blocks[bj]
			cover := c.index[bi].Cover
			if cover.Start >= covering.End {
				break
			}
			for ri < len(runs) && runs[ri].End <= cover.Start {
				ri++
			}
			if ri == len(runs) {
				break
			}
			if runs[ri].Start >= cover.End {
				continue // no requested position in this block: skip the read
			}
			dec, err := c.pinBlock(bi)
			if err != nil {
				return dst, err
			}
			bb, isBV := dec.(*encoding.BVBlock)
			if !isBV {
				c.unpinBlock(bi)
				return dst, fmt.Errorf("%s block %d: %w: not a BV block", c.path, bi, ErrCorruptFile)
			}
			for rj := ri; rj < len(runs) && runs[rj].Start < cover.End; rj++ {
				o := runs[rj].Intersect(cover)
				if o.Empty() {
					continue
				}
				kernels.ScatterBits(out, v, bb.Words, bb.StartBit, o, offs[rj]+(o.Start-runs[rj].Start))
			}
			c.unpinBlock(bi)
		}
	}
	return dst, nil
}

// GatherUnordered appends to dst the values at ps[0], ps[1], ... — arbitrary
// positions, unsorted and possibly repeated, as the join's deferred-fetch
// post-pass produces them (right positions emerge in left probe order).
// Dense inputs (positions covering a bounded span, the common join shape —
// many probe matches over a small inner table) materialize the covering
// window once with one batched gather and index it directly; sparse inputs
// are sorted, deduplicated, fetched with one batched GatherAt, and scattered
// back to input order. Either way the stored column is walked once in block
// order no matter how shuffled the input is. Every position must lie within
// the column extent.
func (c *Column) GatherUnordered(ps []int64, dst []int64) ([]int64, error) {
	if len(ps) == 0 {
		return dst, nil
	}
	lo, hi := ps[0], ps[0]
	for _, p := range ps[1:] {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	if lo < 0 || hi >= c.hdr.tuples {
		return dst, fmt.Errorf("storage: gather position out of range [0,%d)", c.hdr.tuples)
	}
	if spread := hi - lo + 1; spread <= int64(len(ps))*8 {
		// Dense: one contiguous gather of the covering span, then direct
		// indexing — no sort, no per-output binary search.
		window, err := c.GatherAt(positions.Ranges{{Start: lo, End: hi + 1}}, make([]int64, 0, spread))
		if err != nil {
			return dst, err
		}
		for _, p := range ps {
			dst = append(dst, window[p-lo])
		}
		return dst, nil
	}
	uniq := make([]int64, len(ps))
	copy(uniq, ps)
	slices.Sort(uniq)
	uniq = slices.Compact(uniq)
	n := len(uniq)
	vals, err := c.GatherAt(positions.List(uniq), make([]int64, 0, n))
	if err != nil {
		return dst, err
	}
	for _, p := range ps {
		// Hand-rolled binary search: this is the per-output inner loop.
		lo, hi := 0, n
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if uniq[mid] < p {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		dst = append(dst, vals[lo])
	}
	return dst, nil
}
