package storage

import (
	"math/rand"
	"path/filepath"
	"testing"

	"matstore/internal/encoding"
	"matstore/internal/positions"
)

// gatherColumns opens one column per encoding over the same logical values,
// sized to span multiple blocks (including multiple bit-vector blocks:
// 600000 > BVBlockBits).
func gatherColumns(t *testing.T) (map[encoding.Kind]*Column, []int64) {
	t.Helper()
	const n = 600000
	rng := rand.New(rand.NewSource(17))
	vals := make([]int64, n)
	run := int64(0)
	for i := range vals {
		if run == 0 {
			run = 1 + rng.Int63n(9)
		}
		if i > 0 {
			vals[i] = vals[i-1]
		}
		run--
		if run == 0 {
			vals[i] = rng.Int63n(7)
		}
	}
	dir := t.TempDir()
	cols := make(map[encoding.Kind]*Column)
	for _, enc := range []encoding.Kind{encoding.Plain, encoding.RLE, encoding.BitVector} {
		path := filepath.Join(dir, enc.String()+".col")
		writeColumn(t, path, enc, vals)
		cols[enc] = openColumn(t, path)
	}
	return cols, vals
}

// gatherSets builds position sets in every representation and density class,
// including runs that straddle block boundaries of all three encodings.
func gatherSets(n int64) map[string]positions.Set {
	rng := rand.New(rand.NewSource(18))
	sparse := positions.List{}
	for p := int64(13); p < n; p += 7919 {
		sparse = append(sparse, p)
	}
	var runs positions.Ranges
	for p := int64(0); p+900 < n; p += 70000 {
		runs = append(runs, positions.Range{Start: p, End: p + 900})
	}
	// Runs crossing plain (8188), RLE and BV (523,...) block boundaries.
	edges := positions.NewRanges(
		positions.Range{Start: encoding.PlainBlockCap - 5, End: encoding.PlainBlockCap + 5},
		positions.Range{Start: 3*encoding.PlainBlockCap - 1, End: 3*encoding.PlainBlockCap + 2},
		positions.Range{Start: encoding.BVBlockBits - 70, End: encoding.BVBlockBits + 70},
		positions.Range{Start: n - 3, End: n},
	)
	bm := positions.NewBitmap(0, n)
	for i := 0; i < 5000; i++ {
		bm.Set(rng.Int63n(n))
	}
	return map[string]positions.Set{
		"empty":  positions.Empty{},
		"single": positions.List{n / 2},
		"sparse": sparse,
		"runs":   runs,
		"edges":  edges,
		"bitmap": bm,
		"full":   positions.NewRanges(positions.Range{Start: 0, End: n}),
	}
}

// TestDifferentialGatherAt: the batched block-pinned gather must agree with
// the retained per-position ValueAt reference for every encoding × position
// set shape.
func TestDifferentialGatherAt(t *testing.T) {
	cols, vals := gatherColumns(t)
	sets := gatherSets(int64(len(vals)))
	for enc, c := range cols {
		for name, ps := range sets {
			got, err := c.GatherAt(ps, nil)
			if err != nil {
				t.Fatalf("%v/%s: %v", enc, name, err)
			}
			if int64(len(got)) != ps.Count() {
				t.Fatalf("%v/%s: got %d values, want %d", enc, name, len(got), ps.Count())
			}
			// Every position checks against the generator's ground truth;
			// the retained per-position ValueAt reference is cross-checked
			// on a sample (it is orders of magnitude slower under -race).
			i := 0
			it := ps.Runs()
			for {
				r, ok := it.Next()
				if !ok {
					break
				}
				for p := r.Start; p < r.End; p++ {
					if got[i] != vals[p] {
						t.Fatalf("%v/%s: pos %d: gather %d, want %d", enc, name, p, got[i], vals[p])
					}
					if i%101 == 0 {
						want, err := c.ValueAt(p)
						if err != nil {
							t.Fatal(err)
						}
						if got[i] != want {
							t.Fatalf("%v/%s: pos %d: gather %d, ValueAt %d", enc, name, p, got[i], want)
						}
					}
					i++
				}
			}
		}
	}
}

// TestDifferentialGatherUnordered: arbitrary shuffled, repeated positions
// must come back in input order, equal to per-position ValueAt.
func TestDifferentialGatherUnordered(t *testing.T) {
	cols, vals := gatherColumns(t)
	rng := rand.New(rand.NewSource(19))
	sparse := make([]int64, 4000) // spread ≫ 8×len: sorted-dedup path
	for i := range sparse {
		if i%5 == 0 && i > 0 {
			sparse[i] = sparse[i-1] // repeats, as join probes produce
		} else {
			sparse[i] = rng.Int63n(int64(len(vals)))
		}
	}
	dense := make([]int64, 4000) // bounded span: covering-window path
	base := int64(len(vals)) / 2
	for i := range dense {
		dense[i] = base + rng.Int63n(9000)
	}
	for name, ps := range map[string][]int64{"sparse": sparse, "dense": dense, "one": {7}} {
		for enc, c := range cols {
			got, err := c.GatherUnordered(ps, nil)
			if err != nil {
				t.Fatalf("%v/%s: %v", enc, name, err)
			}
			if len(got) != len(ps) {
				t.Fatalf("%v/%s: got %d values, want %d", enc, name, len(got), len(ps))
			}
			for i, p := range ps {
				if got[i] != vals[p] {
					t.Fatalf("%v/%s: ps[%d]=%d: gather %d, want %d", enc, name, i, p, got[i], vals[p])
				}
			}
		}
	}
	// Out-of-range positions must be rejected, like ValueAt.
	for enc, c := range cols {
		if _, err := c.GatherUnordered([]int64{0, int64(len(vals))}, nil); err == nil {
			t.Fatalf("%v: out-of-range position accepted", enc)
		}
		if _, err := c.GatherUnordered([]int64{-1}, nil); err == nil {
			t.Fatalf("%v: negative position accepted", enc)
		}
	}
}

// TestBVValueAtMultiBlock is the regression test for the bit-vector ValueAt
// lookup: with > BVBlockBits tuples each distinct value's bit-string spans
// several blocks, and the lookup must consult only the block whose cover
// contains the position (binary search per value's block list) yet still
// return the right value on both sides of every block boundary.
func TestBVValueAtMultiBlock(t *testing.T) {
	const n = encoding.BVBlockBits + 12345 // two blocks per distinct value
	vals := make([]int64, n)
	rng := rand.New(rand.NewSource(20))
	for i := range vals {
		vals[i] = rng.Int63n(5)
	}
	path := filepath.Join(t.TempDir(), "bv.col")
	writeColumn(t, path, encoding.BitVector, vals)
	c := openColumn(t, path)
	if c.NumBlocks() < 10 { // 5 distinct values × 2 blocks each
		t.Fatalf("want a multi-block BV column, got %d blocks", c.NumBlocks())
	}
	checks := []int64{0, 1, encoding.BVBlockBits - 1, encoding.BVBlockBits, encoding.BVBlockBits + 1, n - 1}
	for i := 0; i < 200; i++ {
		checks = append(checks, rng.Int63n(n))
	}
	for _, pos := range checks {
		got, err := c.ValueAt(pos)
		if err != nil {
			t.Fatal(err)
		}
		if got != vals[pos] {
			t.Fatalf("ValueAt(%d) = %d, want %d", pos, got, vals[pos])
		}
	}
}
