package storage

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"matstore/internal/buffer"
	"matstore/internal/encoding"
	"matstore/internal/exec"
)

// A Projection is the C-Store unit of physical design: a subset of a table's
// columns, all sorted in the same order, each stored in its own column file.
// The projection directory holds one .col file per column plus a meta.json
// catalog entry.

// ColumnSpec describes one column of a projection to be written.
type ColumnSpec struct {
	Name     string
	Encoding encoding.Kind
}

// ColumnMeta is the catalog record for one stored column.
type ColumnMeta struct {
	Name      string  `json:"name"`
	Encoding  string  `json:"encoding"`
	File      string  `json:"file"`
	Min       int64   `json:"min"`
	Max       int64   `json:"max"`
	Distinct  int64   `json:"distinct"`
	AvgRunLen float64 `json:"avg_run_len"`
	Blocks    int64   `json:"blocks"`
}

// ProjectionMeta is the catalog record for a projection.
type ProjectionMeta struct {
	Name       string       `json:"name"`
	TupleCount int64        `json:"tuple_count"`
	SortKey    []string     `json:"sort_key"`
	Columns    []ColumnMeta `json:"columns"`
}

const metaFile = "meta.json"

// Projection is an open projection: catalog metadata plus one open Column
// per attribute.
type Projection struct {
	Meta ProjectionMeta
	dir  string
	cols map[string]*Column
}

// OpenProjection opens the projection stored in dir, reading all columns
// through pool.
func OpenProjection(dir string, pool *buffer.Pool) (*Projection, error) {
	raw, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return nil, err
	}
	var meta ProjectionMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	p := &Projection{Meta: meta, dir: dir, cols: make(map[string]*Column, len(meta.Columns))}
	for _, cm := range meta.Columns {
		col, err := Open(filepath.Join(dir, cm.File), pool)
		if err != nil {
			p.Close()
			return nil, err
		}
		if col.TupleCount() != meta.TupleCount {
			p.Close()
			return nil, fmt.Errorf("%s: %w: column %s has %d tuples, projection has %d",
				dir, ErrCorruptFile, cm.Name, col.TupleCount(), meta.TupleCount)
		}
		p.cols[cm.Name] = col
	}
	return p, nil
}

// Close closes every column.
func (p *Projection) Close() error {
	var first error
	for _, c := range p.cols {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Name returns the projection name.
func (p *Projection) Name() string { return p.Meta.Name }

// TupleCount returns the number of logical rows.
func (p *Projection) TupleCount() int64 { return p.Meta.TupleCount }

// ColumnNames returns the attribute names in catalog order.
func (p *Projection) ColumnNames() []string {
	out := make([]string, len(p.Meta.Columns))
	for i, cm := range p.Meta.Columns {
		out[i] = cm.Name
	}
	return out
}

// Column returns the open column for name.
func (p *Projection) Column(name string) (*Column, error) {
	c, ok := p.cols[name]
	if !ok {
		return nil, fmt.Errorf("storage: projection %s has no column %q", p.Meta.Name, name)
	}
	return c, nil
}

// ProjectionWriter writes a projection row by row (or run by run).
type ProjectionWriter struct {
	dir     string
	meta    ProjectionMeta
	writers []*ColumnWriter
	specs   []ColumnSpec
	count   int64
}

// NewProjectionWriter creates dir (if needed) and opens one column writer
// per spec.
func NewProjectionWriter(dir, name string, sortKey []string, specs []ColumnSpec) (*ProjectionWriter, error) {
	if len(specs) == 0 {
		return nil, errors.New("storage: projection needs at least one column")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	pw := &ProjectionWriter{
		dir:   dir,
		meta:  ProjectionMeta{Name: name, SortKey: sortKey},
		specs: specs,
	}
	for _, spec := range specs {
		w, err := NewColumnWriter(filepath.Join(dir, spec.Name+".col"), spec.Encoding)
		if err != nil {
			return nil, err
		}
		pw.writers = append(pw.writers, w)
	}
	return pw, nil
}

// AppendRow appends one logical row; vals must parallel the specs.
func (pw *ProjectionWriter) AppendRow(vals ...int64) error {
	if len(vals) != len(pw.writers) {
		return fmt.Errorf("storage: AppendRow got %d values, want %d", len(vals), len(pw.writers))
	}
	for i, v := range vals {
		if err := pw.writers[i].Append(v); err != nil {
			return err
		}
	}
	pw.count++
	return nil
}

// Close finishes every column and writes meta.json.
func (pw *ProjectionWriter) Close() (ProjectionMeta, error) {
	for i, w := range pw.writers {
		if err := w.Close(); err != nil {
			return ProjectionMeta{}, err
		}
		pw.meta.Columns = append(pw.meta.Columns, columnMeta(pw.specs[i], w))
	}
	pw.meta.TupleCount = pw.count
	if err := writeMetaFile(pw.dir, pw.meta); err != nil {
		return ProjectionMeta{}, err
	}
	return pw.meta, nil
}

// columnMeta assembles the catalog record of one closed column writer.
func columnMeta(spec ColumnSpec, w *ColumnWriter) ColumnMeta {
	return ColumnMeta{
		Name:      spec.Name,
		Encoding:  spec.Encoding.String(),
		File:      spec.Name + ".col",
		Min:       w.minV,
		Max:       w.maxV,
		Distinct:  distinctOf(w),
		AvgRunLen: avgRunOf(w),
		Blocks:    int64(len(w.index)),
	}
}

// writeMetaFile marshals and writes a projection's meta.json.
func writeMetaFile(dir string, meta ProjectionMeta) error {
	raw, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, metaFile), raw, 0o644)
}

func distinctOf(w *ColumnWriter) int64 {
	if w.enc == encoding.BitVector {
		return int64(len(w.bvBits))
	}
	return w.runs
}

func avgRunOf(w *ColumnWriter) float64 {
	if w.runs == 0 {
		return 1
	}
	return float64(w.count) / float64(w.runs)
}

// WriteProjectionParallel writes one projection with its column files
// produced concurrently: emit(i, w) streams column i's full value sequence
// into its writer, and the column tasks fan out over a bounded worker pool
// (workers <= 1 writes serially). Column files are independent — each one's
// bytes depend only on its own value stream — so output is byte-identical
// at every worker count; meta.json is assembled after all columns close.
// This is the projection-writing half of parallel data generation.
func WriteProjectionParallel(dir, name string, sortKey []string, specs []ColumnSpec, workers int, emit func(col int, w *ColumnWriter) error) (ProjectionMeta, error) {
	if len(specs) == 0 {
		return ProjectionMeta{}, errors.New("storage: projection needs at least one column")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return ProjectionMeta{}, err
	}
	writers := make([]*ColumnWriter, len(specs))
	err := exec.Run(exec.Resolve(workers), len(specs), func(i int) error {
		w, err := NewColumnWriter(filepath.Join(dir, specs[i].Name+".col"), specs[i].Encoding)
		if err != nil {
			return err
		}
		writers[i] = w
		if err := emit(i, w); err != nil {
			w.Close() // release the file handle; the emit error wins
			return err
		}
		return w.Close()
	})
	if err != nil {
		return ProjectionMeta{}, err
	}
	meta := ProjectionMeta{Name: name, SortKey: sortKey, TupleCount: writers[0].count}
	for i, w := range writers {
		if w.count != meta.TupleCount {
			return ProjectionMeta{}, fmt.Errorf("storage: column %s has %d tuples, %s has %d",
				specs[i].Name, w.count, specs[0].Name, meta.TupleCount)
		}
		meta.Columns = append(meta.Columns, columnMeta(specs[i], w))
	}
	if err := writeMetaFile(dir, meta); err != nil {
		return ProjectionMeta{}, err
	}
	return meta, nil
}

// DB is a directory of projections sharing one buffer pool.
type DB struct {
	dir  string
	pool *buffer.Pool
	proj map[string]*Projection
}

// OpenDB opens every projection directory under dir (any subdirectory
// containing meta.json) with a pool of poolBytes.
func OpenDB(dir string, poolBytes int64) (*DB, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	db := &DB{dir: dir, pool: buffer.New(poolBytes), proj: make(map[string]*Projection)}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, e.Name(), metaFile)); err != nil {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, n := range names {
		p, err := OpenProjection(filepath.Join(dir, n), db.pool)
		if err != nil {
			db.Close()
			return nil, err
		}
		db.proj[p.Meta.Name] = p
	}
	return db, nil
}

// Close closes every projection.
func (db *DB) Close() error {
	var first error
	for _, p := range db.proj {
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Pool returns the shared buffer pool.
func (db *DB) Pool() *buffer.Pool { return db.pool }

// Dir returns the database's root directory.
func (db *DB) Dir() string { return db.dir }

// Projection returns the named projection.
func (db *DB) Projection(name string) (*Projection, error) {
	p, ok := db.proj[name]
	if !ok {
		return nil, fmt.Errorf("storage: no projection %q in %s", name, db.dir)
	}
	return p, nil
}

// ProjectionNames lists open projections, sorted.
func (db *DB) ProjectionNames() []string {
	out := make([]string, 0, len(db.proj))
	for n := range db.proj {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
