package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"matstore/internal/positions"
)

// Shard-aware layout: a sharded database root holds one full projection
// directory tree per shard (shard-000, shard-001, ...) plus a shards.json
// manifest describing how each projection's global row space maps onto the
// shards. A shard directory is an ordinary database directory — every
// existing open/serve path works on it unchanged — and the manifest is the
// per-shard metadata a scatter-gather coordinator loads at startup so
// planning (routing, pruning, position remapping) never touches shard data.
//
// Projections come in two placements:
//
//   - sharded: the rows are horizontally partitioned into chunk-aligned
//     global row ranges, shard k holding rows [Ranges[k].Start,
//     Ranges[k].End). Positions inside a shard are shard-local (they start
//     at 0); Ranges[k].Start is the offset that remaps them into the global
//     position space.
//   - replicated: every shard holds the full projection (the co-located
//     build side of scatter-gather joins). Queries over a replicated
//     projection route to a single shard.

// ShardManifestFile names the manifest at a sharded database root.
const ShardManifestFile = "shards.json"

// ShardPlacement describes one projection's distribution over the shards.
type ShardPlacement struct {
	// Sharded reports horizontal row-range partitioning; false means the
	// projection is fully replicated in every shard.
	Sharded bool `json:"sharded"`
	// Ranges[k] is shard k's global row range (sharded projections only;
	// empty ranges mean the shard holds no rows of this projection).
	Ranges []positions.Range `json:"ranges,omitempty"`
}

// ShardManifest is the coordinator-held metadata of a sharded database.
type ShardManifest struct {
	// NumShards is the shard count; Dirs[k] is shard k's directory name
	// relative to the root.
	NumShards int      `json:"num_shards"`
	Dirs      []string `json:"dirs"`
	// Projections maps projection name to its placement.
	Projections map[string]ShardPlacement `json:"projections"`
}

// ShardDirName returns the canonical directory name of shard k.
func ShardDirName(k int) string { return fmt.Sprintf("shard-%03d", k) }

// WriteShardManifest writes the manifest at the database root.
func WriteShardManifest(root string, m *ShardManifest) error {
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(root, ShardManifestFile), raw, 0o644)
}

// LoadShardManifest reads the manifest at a sharded database root.
func LoadShardManifest(root string) (*ShardManifest, error) {
	raw, err := os.ReadFile(filepath.Join(root, ShardManifestFile))
	if err != nil {
		return nil, err
	}
	var m ShardManifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Join(root, ShardManifestFile), err)
	}
	if m.NumShards != len(m.Dirs) {
		return nil, fmt.Errorf("storage: manifest has %d shards but %d dirs", m.NumShards, len(m.Dirs))
	}
	for name, pl := range m.Projections {
		if pl.Sharded && len(pl.Ranges) != m.NumShards {
			return nil, fmt.Errorf("storage: projection %s has %d ranges for %d shards", name, len(pl.Ranges), m.NumShards)
		}
	}
	return &m, nil
}

// Placement returns the named projection's placement.
func (m *ShardManifest) Placement(name string) (ShardPlacement, bool) {
	pl, ok := m.Projections[name]
	return pl, ok
}

// GlobalRowStart returns the global position offset of shard k's rows of a
// projection: shard-local positions remap into the global position space by
// adding it. Replicated projections are global everywhere (offset 0).
func (m *ShardManifest) GlobalRowStart(name string, k int) int64 {
	pl, ok := m.Projections[name]
	if !ok || !pl.Sharded || k >= len(pl.Ranges) {
		return 0
	}
	return pl.Ranges[k].Start
}

// ShardRanges carves the global row space [0, n) into shards contiguous
// row ranges aligned to align-position boundaries (the executor chunk size,
// so shard-local positions stay block- and chunk-local). The ideal even
// split rounds UP to the alignment, so early shards absorb the rounding and
// trailing shards may be empty for tiny tables; when the table is too small
// for even one aligned row per shard the alignment degrades in powers of
// two (never below 64, the position-bitmap word size) so small datasets
// still fan out.
func ShardRanges(n int64, shards int, align int64) []positions.Range {
	if shards < 1 {
		shards = 1
	}
	if align < 64 {
		align = 64
	}
	// Degrade alignment until at least (shards-1) shards get rows, or the
	// word-size floor is hit.
	for align > 64 && n < align*int64(shards) {
		align /= 2
	}
	per := (n + int64(shards) - 1) / int64(shards)
	per = (per + align - 1) / align * align
	if per < align {
		per = align
	}
	out := make([]positions.Range, shards)
	start := int64(0)
	for k := 0; k < shards; k++ {
		end := start + per
		if end > n {
			end = n
		}
		if start > n {
			start = n
		}
		out[k] = positions.Range{Start: start, End: end}
		start = end
	}
	return out
}

// ReadProjectionMeta reads a projection directory's catalog record without
// opening its column files — the coordinator's startup path: per-shard
// min/max, tuple counts and encodings for routing and pruning, no shard
// data touched.
func ReadProjectionMeta(dir string) (ProjectionMeta, error) {
	raw, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return ProjectionMeta{}, err
	}
	var meta ProjectionMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return ProjectionMeta{}, fmt.Errorf("%s: %w", dir, err)
	}
	return meta, nil
}

// ListProjectionDirs lists the projection directory names under a database
// directory (any subdirectory holding a meta.json), sorted.
func ListProjectionDirs(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, e.Name(), metaFile)); err != nil {
			continue
		}
		names = append(names, e.Name())
	}
	return names, nil
}
