package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"matstore/internal/positions"
)

// Shard-aware layout: a sharded database root holds one full projection
// directory tree per shard (shard-000, shard-001, ...) plus a shards.json
// manifest describing how each projection's global row space maps onto the
// shards. A shard directory is an ordinary database directory — every
// existing open/serve path works on it unchanged — and the manifest is the
// per-shard metadata a scatter-gather coordinator loads at startup so
// planning (routing, pruning, position remapping) never touches shard data.
//
// Projections come in three placements:
//
//   - range-sharded: the rows are horizontally partitioned into
//     chunk-aligned global row ranges, shard k holding rows
//     [Ranges[k].Start, Ranges[k].End). Positions inside a shard are
//     shard-local (they start at 0); Ranges[k].Start is the offset that
//     remaps them into the global position space.
//   - key-partitioned: the rows are hash-partitioned on one column, shard k
//     holding exactly the rows whose key hashes to k — in global row order
//     (each shard is the global-order subsequence of its rows). Every
//     key-partitioned shard projection carries a hidden RowIDColumn with
//     each row's global row index, which is how a coordinator restores the
//     global interleaving of shard partials. Two projections partitioned on
//     their join keys under the same scheme are co-partitioned: the join is
//     shard-local with no inner replication.
//   - replicated: every shard holds the full projection (the co-located
//     build side of scatter-gather joins). Queries over a replicated
//     projection route to a single shard.

// ShardManifestFile names the manifest at a sharded database root.
const ShardManifestFile = "shards.json"

// PartitionHashName identifies the hash scheme of key-partitioned layouts:
// operators.HashKey (the 64-bit MurmurHash3 finalizer) reduced modulo the
// shard count. Recording it per projection lets a coordinator refuse to
// treat projections partitioned under different schemes as co-partitioned.
const PartitionHashName = "murmur3-fin64"

// RowIDColumn names the hidden global-row-id column every key-partitioned
// shard projection carries as its last column: value = the row's global row
// index in the unsharded projection. Coordinators merge shard partials back
// into global row order by this column; it is never part of a user schema.
const RowIDColumn = "_rowid"

// PartitionScheme describes how a key-partitioned projection's rows map to
// shards: row r lives on shard Hash(key column value at r) mod Shards.
type PartitionScheme struct {
	// Column is the partition key column.
	Column string `json:"column"`
	// Hash names the hash scheme (PartitionHashName).
	Hash string `json:"hash"`
	// Shards is the partition count the layout was generated with.
	Shards int `json:"shards"`
}

// ShardPlacement describes one projection's distribution over the shards.
type ShardPlacement struct {
	// Sharded reports horizontal partitioning (range- or key-based); false
	// means the projection is fully replicated in every shard.
	Sharded bool `json:"sharded"`
	// Ranges[k] is shard k's global row range (range-sharded projections
	// only; empty ranges mean the shard holds no rows of this projection).
	Ranges []positions.Range `json:"ranges,omitempty"`
	// Partition is the hash-partitioning scheme of a key-partitioned
	// projection (nil for range-sharded and replicated placements).
	Partition *PartitionScheme `json:"partition,omitempty"`
}

// KeyPartitioned reports whether this placement hash-partitions rows on a
// key column.
func (p ShardPlacement) KeyPartitioned() bool { return p.Sharded && p.Partition != nil }

// ShardManifest is the coordinator-held metadata of a sharded database.
type ShardManifest struct {
	// NumShards is the shard count; Dirs[k] is shard k's directory name
	// relative to the root.
	NumShards int      `json:"num_shards"`
	Dirs      []string `json:"dirs"`
	// Projections maps projection name to its placement.
	Projections map[string]ShardPlacement `json:"projections"`
}

// ShardDirName returns the canonical directory name of shard k.
func ShardDirName(k int) string { return fmt.Sprintf("shard-%03d", k) }

// WriteShardManifest writes the manifest at the database root.
func WriteShardManifest(root string, m *ShardManifest) error {
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(root, ShardManifestFile), raw, 0o644)
}

// LoadShardManifest reads the manifest at a sharded database root.
func LoadShardManifest(root string) (*ShardManifest, error) {
	raw, err := os.ReadFile(filepath.Join(root, ShardManifestFile))
	if err != nil {
		return nil, err
	}
	var m ShardManifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Join(root, ShardManifestFile), err)
	}
	if m.NumShards != len(m.Dirs) {
		return nil, fmt.Errorf("storage: manifest has %d shards but %d dirs", m.NumShards, len(m.Dirs))
	}
	for name, pl := range m.Projections {
		switch {
		case pl.Partition != nil:
			if !pl.Sharded {
				return nil, fmt.Errorf("storage: projection %s has a partition scheme but is not sharded", name)
			}
			if pl.Partition.Column == "" {
				return nil, fmt.Errorf("storage: projection %s partition scheme names no column", name)
			}
			if pl.Partition.Shards != m.NumShards {
				return nil, fmt.Errorf("storage: projection %s partitioned into %d shards, manifest has %d",
					name, pl.Partition.Shards, m.NumShards)
			}
		case pl.Sharded && len(pl.Ranges) != m.NumShards:
			return nil, fmt.Errorf("storage: projection %s has %d ranges for %d shards", name, len(pl.Ranges), m.NumShards)
		}
	}
	return &m, nil
}

// Placement returns the named projection's placement.
func (m *ShardManifest) Placement(name string) (ShardPlacement, bool) {
	pl, ok := m.Projections[name]
	return pl, ok
}

// GlobalRowStart returns the global position offset of shard k's rows of a
// projection: shard-local positions remap into the global position space by
// adding it. Replicated projections are global everywhere (offset 0).
func (m *ShardManifest) GlobalRowStart(name string, k int) int64 {
	pl, ok := m.Projections[name]
	if !ok || !pl.Sharded || k >= len(pl.Ranges) {
		return 0
	}
	return pl.Ranges[k].Start
}

// ShardRanges carves the global row space [0, n) into shards contiguous
// row ranges aligned to align-position boundaries (the executor chunk size,
// so shard-local positions stay block- and chunk-local). The ideal even
// split rounds UP to the alignment, so early shards absorb the rounding and
// trailing shards may be empty for tiny tables; when the table is too small
// for even one aligned row per shard the alignment degrades in powers of
// two (never below 64, the position-bitmap word size) so small datasets
// still fan out.
func ShardRanges(n int64, shards int, align int64) []positions.Range {
	if shards < 1 {
		shards = 1
	}
	if align < 64 {
		align = 64
	}
	// Degrade alignment until at least (shards-1) shards get rows, or the
	// word-size floor is hit.
	for align > 64 && n < align*int64(shards) {
		align /= 2
	}
	per := (n + int64(shards) - 1) / int64(shards)
	per = (per + align - 1) / align * align
	if per < align {
		per = align
	}
	out := make([]positions.Range, shards)
	start := int64(0)
	for k := 0; k < shards; k++ {
		end := start + per
		if end > n {
			end = n
		}
		if start > n {
			start = n
		}
		out[k] = positions.Range{Start: start, End: end}
		start = end
	}
	return out
}

// ReadProjectionMeta reads a projection directory's catalog record without
// opening its column files — the coordinator's startup path: per-shard
// min/max, tuple counts and encodings for routing and pruning, no shard
// data touched.
func ReadProjectionMeta(dir string) (ProjectionMeta, error) {
	raw, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return ProjectionMeta{}, err
	}
	var meta ProjectionMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return ProjectionMeta{}, fmt.Errorf("%s: %w", dir, err)
	}
	return meta, nil
}

// ListProjectionDirs lists the projection directory names under a database
// directory (any subdirectory holding a meta.json), sorted.
func ListProjectionDirs(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, e.Name(), metaFile)); err != nil {
			continue
		}
		names = append(names, e.Name())
	}
	return names, nil
}
