package storage

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"matstore/internal/buffer"
	"matstore/internal/encoding"
	"matstore/internal/positions"
	"matstore/internal/pred"
)

func writeColumn(t *testing.T, path string, enc encoding.Kind, vals []int64) {
	t.Helper()
	w, err := NewColumnWriter(path, enc)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if err := w.Append(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func openColumn(t *testing.T, path string) *Column {
	t.Helper()
	c, err := Open(path, buffer.New(0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func genVals(n, distinct int, sorted bool, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(rng.Intn(distinct))
	}
	if sorted {
		for i := 1; i < n; i++ {
			for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
				vals[j], vals[j-1] = vals[j-1], vals[j]
			}
		}
	}
	return vals
}

func TestColumnRoundTripAllEncodings(t *testing.T) {
	for _, tc := range []struct {
		name string
		enc  encoding.Kind
		vals []int64
	}{
		{"plain-small", encoding.Plain, []int64{5, -1, 7, 7, 0}},
		{"plain-multiblock", encoding.Plain, genVals(3*encoding.PlainBlockCap+17, 1000, false, 1)},
		{"rle-small", encoding.RLE, []int64{3, 3, 3, 9, 9, 1}},
		{"rle-sorted-large", encoding.RLE, genVals(100000, 50, true, 2)},
		{"bv-small", encoding.BitVector, []int64{1, 2, 1, 3, 2, 2}},
		{"bv-large", encoding.BitVector, genVals(600000, 7, false, 3)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "c.col")
			writeColumn(t, path, tc.enc, tc.vals)
			c := openColumn(t, path)
			if c.TupleCount() != int64(len(tc.vals)) {
				t.Fatalf("TupleCount = %d, want %d", c.TupleCount(), len(tc.vals))
			}
			if c.Encoding() != tc.enc {
				t.Fatalf("Encoding = %v", c.Encoding())
			}
			mc, err := c.Window(c.Extent())
			if err != nil {
				t.Fatal(err)
			}
			got := mc.Decompress(nil)
			if !reflect.DeepEqual(got, tc.vals) {
				t.Fatalf("decompressed values differ (len %d vs %d)", len(got), len(tc.vals))
			}
		})
	}
}

func TestColumnStats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.col")
	writeColumn(t, path, encoding.RLE, []int64{2, 2, 2, 2, 5, 5, 9, 9})
	c := openColumn(t, path)
	lo, hi := c.MinMax()
	if lo != 2 || hi != 9 {
		t.Errorf("MinMax = %d,%d", lo, hi)
	}
	if c.Distinct() != 3 {
		t.Errorf("Distinct = %d, want 3", c.Distinct())
	}
	if got := c.AvgRunLen(); got < 2.6 || got > 2.7 {
		t.Errorf("AvgRunLen = %v, want 8/3", got)
	}
}

func TestWindowPartialAndBlockSkipping(t *testing.T) {
	n := 2*encoding.PlainBlockCap + 500
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	path := filepath.Join(t.TempDir(), "c.col")
	writeColumn(t, path, encoding.Plain, vals)
	pool := buffer.New(0)
	c, err := Open(path, pool)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.NumBlocks() != 3 {
		t.Fatalf("NumBlocks = %d, want 3", c.NumBlocks())
	}
	// A window entirely inside block 1 must read exactly one block.
	start := int64(encoding.PlainBlockCap + 100)
	mc, err := c.Window(positions.Range{Start: start, End: start + 50})
	if err != nil {
		t.Fatal(err)
	}
	if got := pool.Stats().Reads; got != 1 {
		t.Errorf("Reads = %d, want 1 (block skipping)", got)
	}
	got := mc.Decompress(nil)
	if int64(got[0]) != start || len(got) != 50 {
		t.Errorf("window values wrong: first=%d len=%d", got[0], len(got))
	}
	// Window past the end of the column clips.
	mc, err = c.Window(positions.Range{Start: int64(n) - 10, End: int64(n) + 100})
	if err != nil {
		t.Fatal(err)
	}
	if mc.Covering().Len() != 10 {
		t.Errorf("clipped window covers %v", mc.Covering())
	}
}

func TestWindowSpansBlockBoundary(t *testing.T) {
	n := encoding.PlainBlockCap * 2
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i % 97)
	}
	path := filepath.Join(t.TempDir(), "c.col")
	writeColumn(t, path, encoding.Plain, vals)
	c := openColumn(t, path)
	start := int64(encoding.PlainBlockCap - 64)
	mc, err := c.Window(positions.Range{Start: start, End: start + 128})
	if err != nil {
		t.Fatal(err)
	}
	got := mc.Decompress(nil)
	for i, v := range got {
		if v != vals[start+int64(i)] {
			t.Fatalf("value %d wrong across boundary", i)
		}
	}
	// Filter across the boundary.
	ps := mc.Filter(pred.Equals(vals[start+64]))
	if ps.Count() == 0 {
		t.Error("filter found nothing across boundary")
	}
}

func TestRLEWindowClipsRuns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.col")
	w, err := NewColumnWriter(path, encoding.RLE)
	if err != nil {
		t.Fatal(err)
	}
	w.AppendRun(7, 1000) // one run spanning the window boundary
	w.AppendRun(9, 1000)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	c := openColumn(t, path)
	mc, err := c.Window(positions.Range{Start: 500, End: 1500})
	if err != nil {
		t.Fatal(err)
	}
	rle := mc.(*encoding.RLEMini)
	ts := rle.Triples()
	want := []encoding.Triple{{Value: 7, Start: 500, Len: 500}, {Value: 9, Start: 1000, Len: 500}}
	if !reflect.DeepEqual(ts, want) {
		t.Errorf("clipped triples = %v, want %v", ts, want)
	}
}

func TestBVWindowAlignment(t *testing.T) {
	vals := genVals(1000, 5, false, 4)
	path := filepath.Join(t.TempDir(), "c.col")
	writeColumn(t, path, encoding.BitVector, vals)
	c := openColumn(t, path)
	if _, err := c.Window(positions.Range{Start: 10, End: 20}); err == nil {
		t.Error("unaligned BV window accepted")
	}
	mc, err := c.Window(positions.Range{Start: 64, End: 200})
	if err != nil {
		t.Fatal(err)
	}
	got := mc.Decompress(nil)
	if !reflect.DeepEqual(got, vals[64:200]) {
		t.Error("BV window values wrong")
	}
}

func TestValueAt(t *testing.T) {
	vals := genVals(50000, 7, true, 5)
	for _, enc := range []encoding.Kind{encoding.Plain, encoding.RLE, encoding.BitVector} {
		path := filepath.Join(t.TempDir(), "c.col")
		writeColumn(t, path, enc, vals)
		c := openColumn(t, path)
		rng := rand.New(rand.NewSource(6))
		for k := 0; k < 100; k++ {
			pos := int64(rng.Intn(len(vals)))
			got, err := c.ValueAt(pos)
			if err != nil {
				t.Fatal(err)
			}
			if got != vals[pos] {
				t.Fatalf("%v ValueAt(%d) = %d, want %d", enc, pos, got, vals[pos])
			}
		}
		if _, err := c.ValueAt(int64(len(vals))); err == nil {
			t.Errorf("%v ValueAt out of range accepted", enc)
		}
		if _, err := c.ValueAt(-1); err == nil {
			t.Errorf("%v ValueAt(-1) accepted", enc)
		}
	}
}

func TestEmptyColumn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.col")
	writeColumn(t, path, encoding.Plain, nil)
	c := openColumn(t, path)
	if c.TupleCount() != 0 || c.NumBlocks() != 0 {
		t.Errorf("empty column: tuples=%d blocks=%d", c.TupleCount(), c.NumBlocks())
	}
	mc, err := c.Window(positions.Range{Start: 0, End: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !mc.Covering().Empty() {
		t.Errorf("empty column window covers %v", mc.Covering())
	}
}

func TestBVDistinctGuard(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.col")
	w, err := NewColumnWriter(path, encoding.BitVector)
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := 0; i <= MaxBVDistinct; i++ {
		if err := w.Append(int64(i)); err != nil {
			lastErr = err
			break
		}
	}
	if lastErr == nil {
		t.Error("bit-vector writer accepted too many distinct values")
	}
}

func TestOpenCorruptFile(t *testing.T) {
	dir := t.TempDir()
	// Garbage file.
	bad := filepath.Join(dir, "bad.col")
	os.WriteFile(bad, []byte("not a column file at all"), 0o644)
	if _, err := Open(bad, buffer.New(0)); err == nil {
		t.Error("opened garbage file")
	}
	// Truncated after header.
	path := filepath.Join(dir, "trunc.col")
	writeColumn(t, path, encoding.Plain, genVals(20000, 10, false, 7))
	raw, _ := os.ReadFile(path)
	os.WriteFile(path, raw[:HeaderSize+100], 0o644)
	if _, err := Open(path, buffer.New(0)); err == nil {
		t.Error("opened truncated file")
	}
	// Corrupted block payload: open succeeds, block read fails.
	path2 := filepath.Join(dir, "corrupt.col")
	writeColumn(t, path2, encoding.Plain, genVals(20000, 10, false, 8))
	raw, _ = os.ReadFile(path2)
	raw[HeaderSize+encoding.BlockHeaderSize+3] ^= 0xff
	os.WriteFile(path2, raw, 0o644)
	c, err := Open(path2, buffer.New(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Window(c.Extent())
	if !errors.Is(err, encoding.ErrCorruptBlock) {
		t.Errorf("window over corrupt block: err = %v", err)
	}
}

func TestProjectionRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "proj")
	pw, err := NewProjectionWriter(dir, "lineitem", []string{"retflag", "shipdate"}, []ColumnSpec{
		{Name: "retflag", Encoding: encoding.RLE},
		{Name: "shipdate", Encoding: encoding.RLE},
		{Name: "linenum", Encoding: encoding.Plain},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := [][3]int64{{1, 100, 3}, {1, 100, 5}, {1, 101, 2}, {2, 50, 7}}
	for _, r := range rows {
		if err := pw.AppendRow(r[0], r[1], r[2]); err != nil {
			t.Fatal(err)
		}
	}
	meta, err := pw.Close()
	if err != nil {
		t.Fatal(err)
	}
	if meta.TupleCount != 4 || len(meta.Columns) != 3 {
		t.Fatalf("meta = %+v", meta)
	}

	p, err := OpenProjection(dir, buffer.New(0))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.TupleCount() != 4 {
		t.Errorf("TupleCount = %d", p.TupleCount())
	}
	if !reflect.DeepEqual(p.ColumnNames(), []string{"retflag", "shipdate", "linenum"}) {
		t.Errorf("ColumnNames = %v", p.ColumnNames())
	}
	col, err := p.Column("linenum")
	if err != nil {
		t.Fatal(err)
	}
	mc, _ := col.Window(col.Extent())
	if got := mc.Decompress(nil); !reflect.DeepEqual(got, []int64{3, 5, 2, 7}) {
		t.Errorf("linenum = %v", got)
	}
	if _, err := p.Column("nope"); err == nil {
		t.Error("missing column lookup succeeded")
	}
}

func TestProjectionWriterErrors(t *testing.T) {
	if _, err := NewProjectionWriter(t.TempDir(), "x", nil, nil); err == nil {
		t.Error("empty spec accepted")
	}
	pw, err := NewProjectionWriter(filepath.Join(t.TempDir(), "p"), "x", nil,
		[]ColumnSpec{{Name: "a", Encoding: encoding.Plain}})
	if err != nil {
		t.Fatal(err)
	}
	if err := pw.AppendRow(1, 2); err == nil {
		t.Error("wrong arity accepted")
	}
	pw.Close()
}

func TestDB(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"alpha", "beta"} {
		pw, err := NewProjectionWriter(filepath.Join(dir, name), name, nil,
			[]ColumnSpec{{Name: "a", Encoding: encoding.Plain}})
		if err != nil {
			t.Fatal(err)
		}
		pw.AppendRow(1)
		if _, err := pw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// A stray non-projection directory must be ignored.
	os.MkdirAll(filepath.Join(dir, "junk"), 0o755)
	db, err := OpenDB(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if got := db.ProjectionNames(); !reflect.DeepEqual(got, []string{"alpha", "beta"}) {
		t.Errorf("ProjectionNames = %v", got)
	}
	if _, err := db.Projection("alpha"); err != nil {
		t.Error(err)
	}
	if _, err := db.Projection("gamma"); err == nil {
		t.Error("missing projection lookup succeeded")
	}
}

func TestAppendAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.col")
	w, err := NewColumnWriter(path, encoding.Plain)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(1)
	w.Close()
	if err := w.Append(2); err == nil {
		t.Error("append after close accepted")
	}
	if err := w.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

// TestWindowMatchesSliceRandom is a property test: for random columns under
// every encoding, Window(r).Decompress must equal the corresponding slice of
// the source data, and filtering through the window must agree with a naive
// scan.
func TestWindowMatchesSliceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for iter := 0; iter < 12; iter++ {
		n := 1000 + rng.Intn(40000)
		vals := genVals(n, 1+rng.Intn(10), rng.Intn(2) == 0, int64(iter))
		enc := []encoding.Kind{encoding.Plain, encoding.RLE, encoding.BitVector}[iter%3]
		path := filepath.Join(t.TempDir(), "c.col")
		writeColumn(t, path, enc, vals)
		c := openColumn(t, path)
		for k := 0; k < 5; k++ {
			start := int64(rng.Intn(n)) &^ 63
			end := start + int64(rng.Intn(n-int(start)))
			mc, err := c.Window(positions.Range{Start: start, End: end})
			if err != nil {
				t.Fatal(err)
			}
			got := mc.Decompress(nil)
			want := vals[start:end]
			if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
				t.Fatalf("iter %d %v: window [%d,%d) mismatch", iter, enc, start, end)
			}
			p := pred.LessThan(int64(rng.Intn(10)))
			ps := mc.Filter(p)
			var wantCount int64
			for _, v := range want {
				if p.Match(v) {
					wantCount++
				}
			}
			if ps.Count() != wantCount {
				t.Fatalf("iter %d %v: filter count %d, want %d", iter, enc, ps.Count(), wantCount)
			}
		}
	}
}
