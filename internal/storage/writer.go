package storage

import (
	"fmt"
	"os"

	"matstore/internal/encoding"
	"matstore/internal/positions"
)

// ColumnWriter builds a column file value by value. Values arrive in
// position order; the writer maintains column statistics (min/max, distinct
// estimate, average run length) for the catalog and cost model, and packs
// blocks according to the target encoding.
type ColumnWriter struct {
	path string
	f    *os.File
	enc  encoding.Kind

	count  int64
	minV   int64
	maxV   int64
	runs   int64
	last   int64
	began  bool
	sorted bool

	index []BlockInfo
	buf   []byte
	off   int64

	// plain state
	pending      []int64
	pendingStart int64

	// rle state
	curTriple encoding.Triple
	triples   []encoding.Triple

	// bit-vector state
	bvBits map[int64][]uint64

	closed bool
}

// NewColumnWriter creates (truncating) the column file at path.
func NewColumnWriter(path string, enc encoding.Kind) (*ColumnWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &ColumnWriter{
		path: path,
		f:    f,
		enc:  enc,
		buf:  make([]byte, encoding.BlockSize),
		off:  HeaderSize,
	}
	if enc == encoding.BitVector {
		w.bvBits = make(map[int64][]uint64)
	}
	return w, nil
}

// Append adds one value at the next position.
func (w *ColumnWriter) Append(v int64) error { return w.AppendRun(v, 1) }

// AppendRun adds n copies of v — the natural interface for generators of
// sorted data, and O(1) for RLE targets.
func (w *ColumnWriter) AppendRun(v int64, n int64) error {
	if w.closed {
		return fmt.Errorf("storage: writer for %s is closed", w.path)
	}
	if n <= 0 {
		return nil
	}
	if !w.began {
		w.began = true
		w.minV, w.maxV = v, v
		w.last = v
		w.runs = 1
		w.sorted = true
	} else {
		if v < w.minV {
			w.minV = v
		}
		if v > w.maxV {
			w.maxV = v
		}
		if v != w.last {
			if v < w.last {
				w.sorted = false
			}
			w.runs++
			w.last = v
		}
	}
	start := w.count
	w.count += n
	switch w.enc {
	case encoding.Plain:
		for i := int64(0); i < n; i++ {
			w.pending = append(w.pending, v)
		}
		return w.flushPlainFull()
	case encoding.RLE:
		if w.curTriple.Len > 0 && w.curTriple.Value == v {
			w.curTriple.Len += n
			return nil
		}
		if w.curTriple.Len > 0 {
			w.triples = append(w.triples, w.curTriple)
			if err := w.flushRLEFull(); err != nil {
				return err
			}
		}
		w.curTriple = encoding.Triple{Value: v, Start: start, Len: n}
		return nil
	case encoding.BitVector:
		if _, ok := w.bvBits[v]; !ok && len(w.bvBits) >= MaxBVDistinct {
			return fmt.Errorf("storage: bit-vector column %s exceeds %d distinct values", w.path, MaxBVDistinct)
		}
		words := w.bvBits[v]
		need := int((w.count + 63) / 64)
		if len(words) < need {
			grown := make([]uint64, need+need/2+1)
			copy(grown, words)
			words = grown
		}
		for i := start; i < w.count; i++ {
			words[i>>6] |= 1 << uint(i&63)
		}
		w.bvBits[v] = words
		return nil
	default:
		return fmt.Errorf("storage: unsupported encoding %v", w.enc)
	}
}

func (w *ColumnWriter) writeBlock(info BlockInfo) error {
	if _, err := w.f.WriteAt(w.buf, w.off); err != nil {
		return err
	}
	w.off += encoding.BlockSize
	w.index = append(w.index, info)
	return nil
}

// flushPlainFull writes any complete plain blocks from the pending buffer.
func (w *ColumnWriter) flushPlainFull() error {
	for len(w.pending) >= encoding.PlainBlockCap {
		if err := w.flushPlainBlock(encoding.PlainBlockCap); err != nil {
			return err
		}
	}
	return nil
}

func (w *ColumnWriter) flushPlainBlock(n int) error {
	consumed := encoding.EncodePlainBlock(w.buf, w.pendingStart, w.pending[:n])
	info := BlockInfo{
		Cover: positions.Range{Start: w.pendingStart, End: w.pendingStart + int64(consumed)},
		Count: uint32(consumed),
	}
	info.MinV, info.MaxV = w.pending[0], w.pending[0]
	for _, v := range w.pending[1:consumed] {
		if v < info.MinV {
			info.MinV = v
		}
		if v > info.MaxV {
			info.MaxV = v
		}
	}
	w.pending = w.pending[consumed:]
	w.pendingStart += int64(consumed)
	return w.writeBlock(info)
}

func (w *ColumnWriter) flushRLEFull() error {
	for len(w.triples) >= encoding.RLEBlockCap {
		if err := w.flushRLEBlock(encoding.RLEBlockCap); err != nil {
			return err
		}
	}
	return nil
}

func (w *ColumnWriter) flushRLEBlock(n int) error {
	consumed := encoding.EncodeRLEBlock(w.buf, w.triples[:n])
	info := BlockInfo{
		Cover: positions.Range{Start: w.triples[0].Start, End: w.triples[consumed-1].End()},
		Count: uint32(consumed),
	}
	info.MinV, info.MaxV = w.triples[0].Value, w.triples[0].Value
	for _, t := range w.triples[1:consumed] {
		if t.Value < info.MinV {
			info.MinV = t.Value
		}
		if t.Value > info.MaxV {
			info.MaxV = t.Value
		}
	}
	w.triples = w.triples[consumed:]
	return w.writeBlock(info)
}

// Close flushes remaining data, writes the footer and header, and syncs.
func (w *ColumnWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	switch w.enc {
	case encoding.Plain:
		for len(w.pending) > 0 {
			n := len(w.pending)
			if n > encoding.PlainBlockCap {
				n = encoding.PlainBlockCap
			}
			if err := w.flushPlainBlock(n); err != nil {
				return err
			}
		}
	case encoding.RLE:
		if w.curTriple.Len > 0 {
			w.triples = append(w.triples, w.curTriple)
			w.curTriple = encoding.Triple{}
		}
		for len(w.triples) > 0 {
			n := len(w.triples)
			if n > encoding.RLEBlockCap {
				n = encoding.RLEBlockCap
			}
			if err := w.flushRLEBlock(n); err != nil {
				return err
			}
		}
	case encoding.BitVector:
		if err := w.flushBV(); err != nil {
			return err
		}
	}

	footerOff := w.off
	if _, err := w.f.WriteAt(marshalFooter(w.index), footerOff); err != nil {
		return err
	}
	distinct := w.runs // upper bound for sorted data
	if w.enc == encoding.BitVector {
		distinct = int64(len(w.bvBits))
	}
	avgRun := 1.0
	if w.runs > 0 {
		avgRun = float64(w.count) / float64(w.runs)
	}
	hdr := fileHeader{
		enc:       w.enc,
		sorted:    w.sorted && w.began,
		tuples:    w.count,
		blocks:    int64(len(w.index)),
		minV:      w.minV,
		maxV:      w.maxV,
		distinct:  distinct,
		avgRunLen: avgRun,
		footerOff: footerOff,
	}
	if _, err := w.f.WriteAt(hdr.marshal(), 0); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	return w.f.Close()
}

// flushBV writes each distinct value's bit-string in ascending value order,
// split across blocks of BVBlockBits bits.
func (w *ColumnWriter) flushBV() error {
	values := make([]int64, 0, len(w.bvBits))
	for v := range w.bvBits {
		values = append(values, v)
	}
	// Insertion sort: distinct counts are small by construction.
	for i := 1; i < len(values); i++ {
		for j := i; j > 0 && values[j] < values[j-1]; j-- {
			values[j], values[j-1] = values[j-1], values[j]
		}
	}
	for _, v := range values {
		words := w.bvBits[v]
		// Ensure the words slice covers the full column (it may be short if
		// the value did not occur near the end).
		need := int((w.count + 63) / 64)
		if len(words) < need {
			grown := make([]uint64, need)
			copy(grown, words)
			words = grown
		}
		var bit int64
		for bit < w.count {
			n := encoding.EncodeBVBlock(w.buf, v, bit, words, w.count-bit)
			info := BlockInfo{
				Cover: positions.Range{Start: bit, End: bit + n},
				Value: v,
				Count: uint32(n),
				MinV:  v,
				MaxV:  v,
			}
			if err := w.writeBlock(info); err != nil {
				return err
			}
			bit += n
		}
	}
	return nil
}
