package storage

import (
	"math/rand"
	"path/filepath"
	"testing"

	"matstore/internal/buffer"
	"matstore/internal/encoding"
	"matstore/internal/positions"
	"matstore/internal/pred"
)

func TestSortedFlag(t *testing.T) {
	dir := t.TempDir()
	sorted := filepath.Join(dir, "s.col")
	writeColumn(t, sorted, encoding.Plain, []int64{1, 1, 2, 5, 5, 9})
	if c := openColumn(t, sorted); !c.Sorted() {
		t.Error("sorted column not flagged")
	}
	unsorted := filepath.Join(dir, "u.col")
	writeColumn(t, unsorted, encoding.Plain, []int64{1, 5, 2})
	if c := openColumn(t, unsorted); c.Sorted() {
		t.Error("unsorted column flagged sorted")
	}
}

func TestZoneMetadataInFooter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.col")
	vals := make([]int64, 2*encoding.PlainBlockCap)
	for i := range vals {
		vals[i] = int64(i)
	}
	writeColumn(t, path, encoding.Plain, vals)
	c := openColumn(t, path)
	if len(c.index) != 2 {
		t.Fatalf("blocks = %d", len(c.index))
	}
	if c.index[0].MinV != 0 || c.index[0].MaxV != int64(encoding.PlainBlockCap-1) {
		t.Errorf("block 0 zone = [%d,%d]", c.index[0].MinV, c.index[0].MaxV)
	}
	if c.index[1].MinV != int64(encoding.PlainBlockCap) {
		t.Errorf("block 1 zone min = %d", c.index[1].MinV)
	}
}

// TestZonePositionsSkipsReads verifies the core property: over a sorted
// multi-block column, a selective range predicate reads only the straddling
// block(s).
func TestZonePositionsSkipsReads(t *testing.T) {
	n := 4 * encoding.PlainBlockCap
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	path := filepath.Join(t.TempDir(), "c.col")
	writeColumn(t, path, encoding.Plain, vals)
	pool := buffer.New(0)
	c, err := Open(path, pool)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Predicate accepting all of block 0 plus half of block 1: only block 1
	// must be read.
	x := int64(encoding.PlainBlockCap + encoding.PlainBlockCap/2)
	ps, used, err := c.ZonePositions(c.Extent(), pred.LessThan(x))
	if err != nil {
		t.Fatal(err)
	}
	if !used {
		t.Fatal("zone path not used for interval predicate on plain column")
	}
	if !positions.Equal(ps, positions.NewRanges(positions.Range{Start: 0, End: x})) {
		t.Errorf("positions = %v..", positions.Slice(ps)[:5])
	}
	if got := pool.Stats().Reads; got != 1 {
		t.Errorf("Reads = %d, want 1 (only the straddling block)", got)
	}
}

// TestZonePositionsMatchesScan cross-checks zone-derived positions against
// a plain window filter for random data, encodings and predicates.
func TestZonePositionsMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 20; iter++ {
		n := 1000 + rng.Intn(30000)
		sorted := rng.Intn(2) == 0
		vals := genVals(n, 1+rng.Intn(50), sorted, int64(iter))
		enc := []encoding.Kind{encoding.Plain, encoding.RLE}[iter%2]
		path := filepath.Join(t.TempDir(), "c.col")
		writeColumn(t, path, enc, vals)
		c := openColumn(t, path)
		for k := 0; k < 4; k++ {
			p := []pred.Predicate{
				pred.LessThan(int64(rng.Intn(50))),
				pred.AtLeast(int64(rng.Intn(50))),
				pred.Equals(int64(rng.Intn(50))),
				pred.InRange(int64(rng.Intn(25)), int64(25+rng.Intn(25))),
			}[k]
			start := int64(rng.Intn(n)) &^ 63
			r := positions.Range{Start: start, End: start + int64(rng.Intn(n-int(start)))}
			got, used, err := c.ZonePositions(r, p)
			if err != nil {
				t.Fatal(err)
			}
			if !used {
				t.Fatalf("zone path unused for %v", p)
			}
			mc, err := c.Window(r)
			if err != nil {
				t.Fatal(err)
			}
			want := mc.Filter(p)
			if !positions.Equal(got, want) {
				t.Fatalf("iter %d %v %v: zone positions differ from scan (%d vs %d)",
					iter, enc, p, got.Count(), want.Count())
			}
		}
	}
}

func TestZonePositionsFallbacks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.col")
	writeColumn(t, path, encoding.BitVector, []int64{1, 2, 1, 2, 3})
	c := openColumn(t, path)
	// Bit-vector encoding falls back to the scan path.
	ps, used, err := c.ZonePositions(c.Extent(), pred.Equals(2))
	if err != nil {
		t.Fatal(err)
	}
	if used {
		t.Error("zone path claimed for bit-vector column")
	}
	if ps.Count() != 2 {
		t.Errorf("fallback count = %d", ps.Count())
	}
	// Non-interval predicate falls back too.
	path2 := filepath.Join(t.TempDir(), "c2.col")
	writeColumn(t, path2, encoding.Plain, []int64{1, 2, 3})
	c2 := openColumn(t, path2)
	ps, used, err = c2.ZonePositions(c2.Extent(), pred.NotEquals(2))
	if err != nil {
		t.Fatal(err)
	}
	if used {
		t.Error("zone path claimed for non-interval predicate")
	}
	if ps.Count() != 2 {
		t.Errorf("Ne fallback count = %d", ps.Count())
	}
}

// TestZoneStraddlingBlockLocalKernel pins the straddling-block fast path for
// both encodings: when the zone index leaves only straddling blocks, the
// compiled predicate runs block-locally — the pool sees exactly the
// straddling block reads AND the resulting positions match a full
// window-filter reference.
func TestZoneStraddlingBlockLocalKernel(t *testing.T) {
	t.Run("plain", func(t *testing.T) {
		n := 3 * encoding.PlainBlockCap
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(i)
		}
		path := filepath.Join(t.TempDir(), "c.col")
		writeColumn(t, path, encoding.Plain, vals)
		pool := buffer.New(0)
		c, err := Open(path, pool)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		// Predicate straddling the middle block only: blocks 0 and 2 are
		// resolved from zones alone.
		lo := int64(encoding.PlainBlockCap + encoding.PlainBlockCap/3)
		hi := int64(encoding.PlainBlockCap + 2*encoding.PlainBlockCap/3)
		ps, used, err := c.ZonePositions(c.Extent(), pred.InRange(lo, hi))
		if err != nil {
			t.Fatal(err)
		}
		if !used {
			t.Fatal("zone path not used")
		}
		if got := pool.Stats().Reads; got != 1 {
			t.Errorf("Reads = %d, want 1 (only the straddling block)", got)
		}
		if !positions.Equal(ps, positions.NewRanges(positions.Range{Start: lo, End: hi})) {
			t.Errorf("positions differ: count=%d want=%d", ps.Count(), hi-lo)
		}
		// Results must equal the window-filter reference exactly.
		mc, err := c.Window(c.Extent())
		if err != nil {
			t.Fatal(err)
		}
		if want := mc.Filter(pred.InRange(lo, hi)); !positions.Equal(ps, want) {
			t.Error("zone positions differ from window filter")
		}
	})
	t.Run("rle", func(t *testing.T) {
		// Sorted low-cardinality data: RLE blocks with long runs; a predicate
		// cutting through one run straddles exactly one block.
		n := 20000
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(i / 100) // runs of 100
		}
		path := filepath.Join(t.TempDir(), "c.col")
		writeColumn(t, path, encoding.RLE, vals)
		pool := buffer.New(0)
		c, err := Open(path, pool)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		ps, used, err := c.ZonePositions(c.Extent(), pred.InRange(50, 151))
		if err != nil {
			t.Fatal(err)
		}
		if !used {
			t.Fatal("zone path not used for RLE")
		}
		mc, err := c.Window(c.Extent())
		if err != nil {
			t.Fatal(err)
		}
		if want := mc.Filter(pred.InRange(50, 151)); !positions.Equal(ps, want) {
			t.Errorf("RLE zone positions differ from window filter (%d vs %d)", ps.Count(), want.Count())
		}
		if got, want := ps.Count(), int64(101*100); got != want {
			t.Errorf("count = %d, want %d", got, want)
		}
	})
	t.Run("rle-straddler-reads", func(t *testing.T) {
		// Force a value range that spans block boundaries: each block's zone
		// straddles a Between cut, so the block-local triple loop runs on a
		// bounded number of blocks while results stay exact.
		vals := genVals(30000, 40, true, 5)
		path := filepath.Join(t.TempDir(), "c.col")
		writeColumn(t, path, encoding.RLE, vals)
		pool := buffer.New(0)
		c, err := Open(path, pool)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		p := pred.InRange(10, 30)
		ps, used, err := c.ZonePositions(c.Extent(), p)
		if err != nil {
			t.Fatal(err)
		}
		if !used {
			t.Fatal("zone path not used")
		}
		reads := pool.Stats().Reads
		if reads > int64(c.NumBlocks()) {
			t.Errorf("Reads = %d exceeds block count %d", reads, c.NumBlocks())
		}
		mc, err := c.Window(c.Extent())
		if err != nil {
			t.Fatal(err)
		}
		if want := mc.Filter(p); !positions.Equal(ps, want) {
			t.Errorf("positions differ from window filter (%d vs %d)", ps.Count(), want.Count())
		}
	})
}
