package tpch

import (
	"fmt"
	"os"
	"path/filepath"

	"matstore/internal/datasource"
	"matstore/internal/exec"
	"matstore/internal/storage"
)

// Sharded generation: csgen -shards N writes one full database directory
// per shard under the root plus a shards.json manifest. The fact tables
// (lineitem, orders) are horizontally partitioned on chunk-aligned global
// row ranges — shard k's projection holds exactly rows [Ranges[k].Start,
// Ranges[k].End) of the single-directory output, re-encoded from position 0,
// byte-identical to row-slicing that output — while the dimension table
// (customer, the join build side) is replicated into every shard so
// shard-local joins see the full inner table. Buffers are generated ONCE
// from the carving-stable per-slab PRNG streams and replayed clipped per
// shard, so sharded generation costs one generation pass regardless of N.

// GenerateSharded writes an N-shard database under root and returns the
// manifest it wrote. N = 1 produces a single shard holding everything
// (still under shard-000, with a manifest — the degenerate layout the
// coordinator treats identically).
func GenerateSharded(root string, cfg Config, shards int) (*storage.ShardManifest, error) {
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("tpch: scale must be positive, got %v", cfg.Scale)
	}
	if shards < 1 {
		return nil, fmt.Errorf("tpch: shard count must be >= 1, got %d", shards)
	}
	workers := exec.Resolve(cfg.Workers)

	// One generation pass for every table.
	slabs, err := genLineitemShards(cfg)
	if err != nil {
		return nil, err
	}
	custkey, shipdate, err := genOrders(cfg)
	if err != nil {
		return nil, err
	}
	nation, err := genCustomer(cfg)
	if err != nil {
		return nil, err
	}

	liRanges := storage.ShardRanges(cfg.LineitemRows(), shards, datasource.DefaultChunkSize)
	ordRanges := storage.ShardRanges(cfg.OrdersRows(), shards, datasource.DefaultChunkSize)

	m := &storage.ShardManifest{
		NumShards: shards,
		Projections: map[string]storage.ShardPlacement{
			LineitemProj: {Sharded: true, Ranges: liRanges},
			OrdersProj:   {Sharded: true, Ranges: ordRanges},
			CustomerProj: {Sharded: false},
		},
	}
	for k := 0; k < shards; k++ {
		shardDir := filepath.Join(root, storage.ShardDirName(k))
		if err := os.MkdirAll(shardDir, 0o755); err != nil {
			return nil, err
		}
		if err := writeLineitem(filepath.Join(shardDir, LineitemProj), slabs, workers, liRanges[k]); err != nil {
			return nil, err
		}
		if err := writeOrders(filepath.Join(shardDir, OrdersProj), custkey, shipdate, workers, ordRanges[k]); err != nil {
			return nil, err
		}
		if err := writeCustomer(filepath.Join(shardDir, CustomerProj), cfg.CustomerRows(), nation, workers); err != nil {
			return nil, err
		}
		m.Dirs = append(m.Dirs, storage.ShardDirName(k))
	}
	if err := storage.WriteShardManifest(root, m); err != nil {
		return nil, err
	}
	return m, nil
}
