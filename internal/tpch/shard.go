package tpch

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"matstore/internal/datasource"
	"matstore/internal/encoding"
	"matstore/internal/exec"
	"matstore/internal/operators"
	"matstore/internal/storage"
)

// Sharded generation: csgen -shards N writes one full database directory
// per shard under the root plus a shards.json manifest. Three placements:
//
//   - range-sharded (default for the fact tables): shard k's projection
//     holds exactly rows [Ranges[k].Start, Ranges[k].End) of the
//     single-directory output, re-encoded from position 0, byte-identical
//     to row-slicing that output.
//   - key-partitioned (csgen -partition-key table.col): shard k holds the
//     global-order subsequence of rows whose key column hashes to k
//     (operators.PartitionOf), plus a trailing hidden storage.RowIDColumn
//     carrying each row's global row index — byte-identical to
//     hash-filtering the unsharded output. Two projections partitioned on
//     their join keys are co-partitioned: the coordinator runs the join
//     shard-locally with no inner replication.
//   - replicated (default for customer, the join build side): every shard
//     holds the full projection.
//
// Buffers are generated ONCE from the carving-stable per-slab PRNG streams
// and replayed clipped/filtered per shard, so sharded generation costs one
// generation pass regardless of N.

// ShardLayout selects non-default placements for sharded generation.
type ShardLayout struct {
	// PartitionKeys maps projection name → partition key column: the
	// projection is hash-partitioned on that column instead of range-sliced
	// (fact tables) or replicated (customer).
	PartitionKeys map[string]string
}

// partitionableColumns lists, per projection, the columns a layout may
// hash-partition on.
var partitionableColumns = map[string][]string{
	LineitemProj: {ColRetflag, ColShipdate, ColLinenum, ColQuantity},
	OrdersProj:   {ColCustkey, ColOrderShipdate},
	CustomerProj: {ColCustkey, ColNationcode},
}

// ParsePartitionKeys parses a comma-separated table.column list (the csgen
// -partition-key flag) into a ShardLayout partition-key map.
func ParsePartitionKeys(s string) (map[string]string, error) {
	out := map[string]string{}
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		dot := strings.IndexByte(item, '.')
		if dot <= 0 || dot == len(item)-1 {
			return nil, fmt.Errorf("tpch: partition key %q is not table.column", item)
		}
		table, col := item[:dot], item[dot+1:]
		if _, dup := out[table]; dup {
			return nil, fmt.Errorf("tpch: duplicate partition key for %q", table)
		}
		out[table] = col
	}
	return out, nil
}

// validate checks every partition key against the generated schema.
func (l ShardLayout) validate() error {
	for proj, col := range l.PartitionKeys {
		allowed, ok := partitionableColumns[proj]
		if !ok {
			return fmt.Errorf("tpch: unknown projection %q in partition keys", proj)
		}
		found := false
		for _, c := range allowed {
			if c == col {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("tpch: projection %s cannot partition on %q (partitionable: %s)",
				proj, col, strings.Join(allowed, ", "))
		}
	}
	return nil
}

// GenerateSharded writes an N-shard range-sharded database under root and
// returns the manifest it wrote. N = 1 produces a single shard holding
// everything (still under shard-000, with a manifest — the degenerate
// layout the coordinator treats identically).
func GenerateSharded(root string, cfg Config, shards int) (*storage.ShardManifest, error) {
	return GenerateShardedLayout(root, cfg, shards, ShardLayout{})
}

// GenerateShardedLayout writes an N-shard database under root with the
// given placement layout and returns the manifest it wrote.
func GenerateShardedLayout(root string, cfg Config, shards int, layout ShardLayout) (*storage.ShardManifest, error) {
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("tpch: scale must be positive, got %v", cfg.Scale)
	}
	if shards < 1 {
		return nil, fmt.Errorf("tpch: shard count must be >= 1, got %d", shards)
	}
	if err := layout.validate(); err != nil {
		return nil, err
	}
	workers := exec.Resolve(cfg.Workers)

	// One generation pass for every table.
	slabs, err := genLineitemShards(cfg)
	if err != nil {
		return nil, err
	}
	custkey, shipdate, err := genOrders(cfg)
	if err != nil {
		return nil, err
	}
	nation, err := genCustomer(cfg)
	if err != nil {
		return nil, err
	}

	// Per-slab partition ids for a key-partitioned lineitem (computed once,
	// reused by every shard's filtered replay).
	var liParts [][]int32
	if col, ok := layout.PartitionKeys[LineitemProj]; ok {
		if liParts, err = lineitemPartitions(slabs, col, shards, workers); err != nil {
			return nil, err
		}
	}

	liRanges := storage.ShardRanges(cfg.LineitemRows(), shards, datasource.DefaultChunkSize)
	ordRanges := storage.ShardRanges(cfg.OrdersRows(), shards, datasource.DefaultChunkSize)

	m := &storage.ShardManifest{
		NumShards:   shards,
		Projections: map[string]storage.ShardPlacement{},
	}
	scheme := func(col string) *storage.PartitionScheme {
		return &storage.PartitionScheme{Column: col, Hash: storage.PartitionHashName, Shards: shards}
	}
	if col, ok := layout.PartitionKeys[LineitemProj]; ok {
		m.Projections[LineitemProj] = storage.ShardPlacement{Sharded: true, Partition: scheme(col)}
	} else {
		m.Projections[LineitemProj] = storage.ShardPlacement{Sharded: true, Ranges: liRanges}
	}
	if col, ok := layout.PartitionKeys[OrdersProj]; ok {
		m.Projections[OrdersProj] = storage.ShardPlacement{Sharded: true, Partition: scheme(col)}
	} else {
		m.Projections[OrdersProj] = storage.ShardPlacement{Sharded: true, Ranges: ordRanges}
	}
	if col, ok := layout.PartitionKeys[CustomerProj]; ok {
		m.Projections[CustomerProj] = storage.ShardPlacement{Sharded: true, Partition: scheme(col)}
	} else {
		m.Projections[CustomerProj] = storage.ShardPlacement{Sharded: false}
	}

	for k := 0; k < shards; k++ {
		shardDir := filepath.Join(root, storage.ShardDirName(k))
		if err := os.MkdirAll(shardDir, 0o755); err != nil {
			return nil, err
		}
		liDir := filepath.Join(shardDir, LineitemProj)
		if liParts != nil {
			err = writeLineitemPartitioned(liDir, slabs, workers, liParts, int32(k))
		} else {
			err = writeLineitem(liDir, slabs, workers, liRanges[k])
		}
		if err != nil {
			return nil, err
		}
		ordDir := filepath.Join(shardDir, OrdersProj)
		if col, ok := layout.PartitionKeys[OrdersProj]; ok {
			err = writeOrdersPartitioned(ordDir, custkey, shipdate, workers, col, shards, k)
		} else {
			err = writeOrders(ordDir, custkey, shipdate, workers, ordRanges[k])
		}
		if err != nil {
			return nil, err
		}
		custDir := filepath.Join(shardDir, CustomerProj)
		if col, ok := layout.PartitionKeys[CustomerProj]; ok {
			err = writeCustomerPartitioned(custDir, cfg.CustomerRows(), nation, workers, col, shards, k)
		} else {
			err = writeCustomer(custDir, cfg.CustomerRows(), nation, workers)
		}
		if err != nil {
			return nil, err
		}
		m.Dirs = append(m.Dirs, storage.ShardDirName(k))
	}
	if err := storage.WriteShardManifest(root, m); err != nil {
		return nil, err
	}
	return m, nil
}

// PartitionedTables lists the layout's key-partitioned projections, sorted.
func (l ShardLayout) PartitionedTables() []string {
	out := make([]string, 0, len(l.PartitionKeys))
	for t := range l.PartitionKeys {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// expand appends the run sequence value-by-value to dst.
func (c *colRuns) expand(dst []int64) []int64 {
	for i, v := range c.vals {
		for j := int64(0); j < c.lens[i]; j++ {
			dst = append(dst, v)
		}
	}
	return dst
}

// replayFiltered appends only the rows whose partition id equals k. Like
// replayClip, filtering cannot perturb the output bytes: AppendRun coalesces
// adjacent equal values, so a filtered replay is indistinguishable from
// appending the surviving values one by one.
func (c *colRuns) replayFiltered(w *storage.ColumnWriter, part []int32, k int32) error {
	cur := int64(0)
	for i, v := range c.vals {
		n := c.lens[i]
		run := int64(0)
		for j := cur; j < cur+n; j++ {
			if part[j] == k {
				run++
				continue
			}
			if run > 0 {
				if err := w.AppendRun(v, run); err != nil {
					return err
				}
				run = 0
			}
		}
		if run > 0 {
			if err := w.AppendRun(v, run); err != nil {
				return err
			}
		}
		cur += n
	}
	return nil
}

// keyValues expands one buffered lineitem column of the slab to per-row
// values (the partition-key stream).
func (s *liShard) keyValues(col string) ([]int64, error) {
	switch col {
	case ColRetflag:
		return s.flagRuns.expand(nil), nil
	case ColShipdate:
		return s.dateRuns.expand(nil), nil
	case ColLinenum, ColLinenumRLE, ColLinenumBV:
		return s.lnRuns.expand(nil), nil
	case ColQuantity:
		return s.qty, nil
	}
	return nil, fmt.Errorf("tpch: lineitem has no column %q", col)
}

// lineitemPartitions computes each slab's per-row partition ids for a
// key-partitioned lineitem layout, in parallel over the slabs.
func lineitemPartitions(slabs []*liShard, col string, shards, workers int) ([][]int32, error) {
	out := make([][]int32, len(slabs))
	if err := exec.Run(workers, len(slabs), func(i int) error {
		vals, err := slabs[i].keyValues(col)
		if err != nil {
			return err
		}
		pp := make([]int32, len(vals))
		for j, v := range vals {
			pp[j] = int32(operators.PartitionOf(v, shards))
		}
		out[i] = pp
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// writeLineitemPartitioned writes shard k of a key-partitioned lineitem:
// the global-order subsequence of rows whose partition id is k, plus the
// hidden global-row-id column.
func writeLineitemPartitioned(dir string, shards []*liShard, workers int, parts [][]int32, k int32) error {
	_, err := storage.WriteProjectionParallel(dir, LineitemProj,
		[]string{ColRetflag, ColShipdate, ColLinenum},
		[]storage.ColumnSpec{
			{Name: ColRetflag, Encoding: encoding.RLE},
			{Name: ColShipdate, Encoding: encoding.RLE},
			{Name: ColLinenum, Encoding: encoding.Plain},
			{Name: ColLinenumRLE, Encoding: encoding.RLE},
			{Name: ColLinenumBV, Encoding: encoding.BitVector},
			{Name: ColQuantity, Encoding: encoding.Plain},
			{Name: storage.RowIDColumn, Encoding: encoding.Plain},
		},
		workers,
		func(col int, w *storage.ColumnWriter) error {
			cursor := int64(0) // global row of the current slab's first row
			for si, s := range shards {
				pp := parts[si]
				var err error
				switch col {
				case 0:
					err = s.flagRuns.replayFiltered(w, pp, k)
				case 1:
					err = s.dateRuns.replayFiltered(w, pp, k)
				case 2, 3, 4:
					err = s.lnRuns.replayFiltered(w, pp, k)
				case 5:
					for i, q := range s.qty {
						if pp[i] != k {
							continue
						}
						if err = w.Append(q); err != nil {
							break
						}
					}
				default:
					for i := range pp {
						if pp[i] != k {
							continue
						}
						if err = w.Append(cursor + int64(i)); err != nil {
							break
						}
					}
				}
				if err != nil {
					return err
				}
				cursor += int64(len(pp))
			}
			return nil
		})
	return err
}

// writeOrdersPartitioned writes shard k of a key-partitioned orders
// projection (subsequence of rows whose key hashes to k, plus row ids).
func writeOrdersPartitioned(dir string, custkey, shipdate [][]int64, workers int, keyCol string, shards, k int) error {
	_, err := storage.WriteProjectionParallel(dir, OrdersProj, nil,
		[]storage.ColumnSpec{
			{Name: ColCustkey, Encoding: encoding.Plain},
			{Name: ColOrderShipdate, Encoding: encoding.Plain},
			{Name: storage.RowIDColumn, Encoding: encoding.Plain},
		},
		workers,
		func(col int, w *storage.ColumnWriter) error {
			cursor := int64(0)
			for bi := range custkey {
				key := custkey[bi]
				if keyCol == ColOrderShipdate {
					key = shipdate[bi]
				}
				for i := range key {
					if operators.PartitionOf(key[i], shards) != k {
						continue
					}
					var v int64
					switch col {
					case 0:
						v = custkey[bi][i]
					case 1:
						v = shipdate[bi][i]
					default:
						v = cursor + int64(i)
					}
					if err := w.Append(v); err != nil {
						return err
					}
				}
				cursor += int64(len(custkey[bi]))
			}
			return nil
		})
	return err
}

// writeCustomerPartitioned writes shard k of a key-partitioned customer
// projection. CUSTKEY equals the global row position, so partitioning on it
// needs no buffer; NATIONCODE partitioning reads the generated buffers.
func writeCustomerPartitioned(dir string, n int64, nation [][]int64, workers int, keyCol string, shards, k int) error {
	_, err := storage.WriteProjectionParallel(dir, CustomerProj, []string{ColCustkey},
		[]storage.ColumnSpec{
			{Name: ColCustkey, Encoding: encoding.Plain},
			{Name: ColNationcode, Encoding: encoding.Plain},
			{Name: storage.RowIDColumn, Encoding: encoding.Plain},
		},
		workers,
		func(col int, w *storage.ColumnWriter) error {
			cursor := int64(0)
			for _, vals := range nation {
				for i, nc := range vals {
					row := cursor + int64(i)
					key := row
					if keyCol == ColNationcode {
						key = nc
					}
					if operators.PartitionOf(key, shards) != k {
						continue
					}
					var v int64
					switch col {
					case 0, 2:
						v = row
					default:
						v = nc
					}
					if err := w.Append(v); err != nil {
						return err
					}
				}
				cursor += int64(len(vals))
			}
			return nil
		})
	return err
}
