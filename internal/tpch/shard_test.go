package tpch

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"matstore/internal/encoding"
	"matstore/internal/operators"
	"matstore/internal/storage"
)

// sliceProjection rewrites rows [lo, hi) of every column of src as a new
// projection directory — the independent row-slicing reference the sharded
// generator is pinned against. Values are read back decompressed from the
// single-directory output and re-encoded through a fresh ColumnWriter from
// position 0, exactly what "slice the single-directory generation" means.
func sliceProjection(t *testing.T, src *storage.Projection, dst, name string, sortKey []string, lo, hi int64) {
	t.Helper()
	var specs []storage.ColumnSpec
	for _, cm := range src.Meta.Columns {
		k, err := encoding.ParseKind(cm.Encoding)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, storage.ColumnSpec{Name: cm.Name, Encoding: k})
	}
	_, err := storage.WriteProjectionParallel(dst, name, sortKey, specs, 1,
		func(col int, w *storage.ColumnWriter) error {
			vals := decompress(t, src, specs[col].Name)
			for _, v := range vals[lo:hi] {
				if err := w.Append(v); err != nil {
					return err
				}
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
}

// filesEqual compares two projection directories byte for byte (column
// files and meta.json).
func filesEqual(t *testing.T, a, b string) {
	t.Helper()
	ents, err := os.ReadDir(a)
	if err != nil {
		t.Fatal(err)
	}
	bents, err := os.ReadDir(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != len(bents) {
		t.Fatalf("%s has %d files, %s has %d", a, len(ents), b, len(bents))
	}
	for _, e := range ents {
		av, err := os.ReadFile(filepath.Join(a, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		bv, err := os.ReadFile(filepath.Join(b, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(av, bv) {
			t.Errorf("%s differs between %s and %s (%d vs %d bytes)", e.Name(), a, b, len(av), len(bv))
		}
	}
}

// TestGenerateShardedByteIdenticalToSlicing pins csgen -shards output:
// every shard's lineitem and orders directories are byte-identical to
// row-slicing the single-directory generation at the manifest's ranges, and
// the replicated customer directory is byte-identical to the single-
// directory customer, at shard counts 1, 2 and 4.
func TestGenerateShardedByteIdenticalToSlicing(t *testing.T) {
	cfg := Config{Scale: 0.002, Seed: 11}
	single := t.TempDir()
	if err := Generate(single, cfg); err != nil {
		t.Fatal(err)
	}
	db, err := storage.OpenDB(single, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	for _, shards := range []int{1, 2, 4} {
		root := t.TempDir()
		m, err := GenerateSharded(root, cfg, shards)
		if err != nil {
			t.Fatal(err)
		}
		if m.NumShards != shards || len(m.Dirs) != shards {
			t.Fatalf("manifest: %d shards, %d dirs", m.NumShards, len(m.Dirs))
		}
		loaded, err := storage.LoadShardManifest(root)
		if err != nil {
			t.Fatal(err)
		}
		if len(loaded.Projections) != 3 {
			t.Fatalf("manifest projections = %d", len(loaded.Projections))
		}

		for _, proj := range []string{LineitemProj, OrdersProj} {
			pl, ok := m.Placement(proj)
			if !ok || !pl.Sharded {
				t.Fatalf("%s not sharded in manifest", proj)
			}
			src, err := db.Projection(proj)
			if err != nil {
				t.Fatal(err)
			}
			// Ranges must tile [0, n) without gaps.
			var covered int64
			for k, r := range pl.Ranges {
				if r.Start != covered {
					t.Fatalf("%s shard %d starts at %d, want %d", proj, k, r.Start, covered)
				}
				covered = r.End
			}
			if covered != src.TupleCount() {
				t.Fatalf("%s ranges cover %d rows, want %d", proj, covered, src.TupleCount())
			}
			for k, r := range pl.Ranges {
				ref := filepath.Join(t.TempDir(), "ref")
				sliceProjection(t, src, ref, proj, src.Meta.SortKey, r.Start, r.End)
				filesEqual(t, ref, filepath.Join(root, m.Dirs[k], proj))
			}
		}

		// Replicated customer: every shard's copy equals the single-dir one.
		for _, d := range m.Dirs {
			filesEqual(t, filepath.Join(single, CustomerProj), filepath.Join(root, d, CustomerProj))
		}

		// Every shard directory opens as an ordinary database.
		for _, d := range m.Dirs {
			sdb, err := storage.OpenDB(filepath.Join(root, d), 0)
			if err != nil {
				t.Fatalf("shard %s does not open: %v", d, err)
			}
			sdb.Close()
		}
	}
}

// filterProjection rewrites the subsequence of src rows whose key column
// hashes to shard k (operators.PartitionOf), plus a trailing _rowid column
// carrying each surviving row's global index — the independent
// hash-filtering reference the key-partitioned generator is pinned against.
func filterProjection(t *testing.T, src *storage.Projection, dst, name string, sortKey []string, keyCol string, shards, k int) {
	t.Helper()
	var specs []storage.ColumnSpec
	for _, cm := range src.Meta.Columns {
		kind, err := encoding.ParseKind(cm.Encoding)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, storage.ColumnSpec{Name: cm.Name, Encoding: kind})
	}
	specs = append(specs, storage.ColumnSpec{Name: storage.RowIDColumn, Encoding: encoding.Plain})
	keyVals := decompress(t, src, keyCol)
	_, err := storage.WriteProjectionParallel(dst, name, sortKey, specs, 1,
		func(col int, w *storage.ColumnWriter) error {
			if col == len(specs)-1 {
				for i := range keyVals {
					if operators.PartitionOf(keyVals[i], shards) != k {
						continue
					}
					if err := w.Append(int64(i)); err != nil {
						return err
					}
				}
				return nil
			}
			vals := decompress(t, src, specs[col].Name)
			for i, v := range vals {
				if operators.PartitionOf(keyVals[i], shards) != k {
					continue
				}
				if err := w.Append(v); err != nil {
					return err
				}
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGenerateKeyPartitionedByteIdenticalToHashFiltering pins csgen
// -partition-key output: every shard's partitioned projection directory is
// byte-identical to hash-filtering the single-directory generation by
// PartitionOf(key) == shard (with the appended global-row-id column), at
// shard counts 1, 2 and 4. returnflag has only 3 distinct values, so some
// shards legitimately receive zero lineitem rows — the empty-projection
// case rides along.
func TestGenerateKeyPartitionedByteIdenticalToHashFiltering(t *testing.T) {
	cfg := Config{Scale: 0.002, Seed: 11}
	single := t.TempDir()
	if err := Generate(single, cfg); err != nil {
		t.Fatal(err)
	}
	db, err := storage.OpenDB(single, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	keys := map[string]string{
		LineitemProj: ColRetflag,
		OrdersProj:   ColCustkey,
		CustomerProj: ColCustkey,
	}
	for _, shards := range []int{1, 2, 4} {
		root := t.TempDir()
		m, err := GenerateShardedLayout(root, cfg, shards, ShardLayout{PartitionKeys: keys})
		if err != nil {
			t.Fatal(err)
		}
		loaded, err := storage.LoadShardManifest(root)
		if err != nil {
			t.Fatal(err)
		}
		for proj, keyCol := range keys {
			pl, ok := loaded.Placement(proj)
			if !ok || !pl.KeyPartitioned() {
				t.Fatalf("shards=%d: %s not key-partitioned in manifest: %+v", shards, proj, pl)
			}
			if pl.Partition.Column != keyCol || pl.Partition.Shards != shards ||
				pl.Partition.Hash != storage.PartitionHashName {
				t.Fatalf("shards=%d: %s scheme = %+v", shards, proj, pl.Partition)
			}
			src, err := db.Projection(proj)
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k < shards; k++ {
				ref := filepath.Join(t.TempDir(), "ref")
				filterProjection(t, src, ref, proj, src.Meta.SortKey, keyCol, shards, k)
				filesEqual(t, ref, filepath.Join(root, m.Dirs[k], proj))
			}
		}
		// Every shard directory opens as an ordinary database (including
		// shards holding zero rows of a partitioned projection).
		for _, d := range m.Dirs {
			sdb, err := storage.OpenDB(filepath.Join(root, d), 0)
			if err != nil {
				t.Fatalf("shard %s does not open: %v", d, err)
			}
			sdb.Close()
		}
	}
}

// TestGenerateMixedLayoutComposes pins layout composition: partitioning
// orders+customer must leave the range-sharded lineitem shards byte-
// identical to the all-range layout's.
func TestGenerateMixedLayoutComposes(t *testing.T) {
	cfg := Config{Scale: 0.002, Seed: 11}
	rangeRoot, mixedRoot := t.TempDir(), t.TempDir()
	if _, err := GenerateSharded(rangeRoot, cfg, 2); err != nil {
		t.Fatal(err)
	}
	m, err := GenerateShardedLayout(mixedRoot, cfg, 2, ShardLayout{PartitionKeys: map[string]string{
		OrdersProj:   ColCustkey,
		CustomerProj: ColCustkey,
	}})
	if err != nil {
		t.Fatal(err)
	}
	li, _ := m.Placement(OrdersProj)
	if !li.KeyPartitioned() {
		t.Fatalf("orders not key-partitioned: %+v", li)
	}
	if pl, _ := m.Placement(LineitemProj); pl.KeyPartitioned() || !pl.Sharded {
		t.Fatalf("lineitem placement changed: %+v", pl)
	}
	for _, d := range m.Dirs {
		filesEqual(t, filepath.Join(rangeRoot, d, LineitemProj), filepath.Join(mixedRoot, d, LineitemProj))
	}
}

// TestParsePartitionKeys checks the csgen flag syntax and layout validation.
func TestParsePartitionKeys(t *testing.T) {
	keys, err := ParsePartitionKeys(" orders.custkey, customer.custkey ")
	if err != nil {
		t.Fatal(err)
	}
	if keys[OrdersProj] != ColCustkey || keys[CustomerProj] != ColCustkey {
		t.Fatalf("keys = %v", keys)
	}
	if keys, err = ParsePartitionKeys(""); err != nil || len(keys) != 0 {
		t.Fatalf("empty spec: %v, %v", keys, err)
	}
	for _, bad := range []string{"orders", "orders.", ".custkey", "orders.custkey,orders.shipdate"} {
		if _, err := ParsePartitionKeys(bad); err == nil {
			t.Errorf("ParsePartitionKeys(%q) did not fail", bad)
		}
	}
	// Schema validation happens at generation time.
	cfg := Config{Scale: 0.002, Seed: 11}
	if _, err := GenerateShardedLayout(t.TempDir(), cfg, 2, ShardLayout{
		PartitionKeys: map[string]string{"nope": ColCustkey},
	}); err == nil {
		t.Error("unknown projection did not fail")
	}
	if _, err := GenerateShardedLayout(t.TempDir(), cfg, 2, ShardLayout{
		PartitionKeys: map[string]string{OrdersProj: "nationcode"},
	}); err == nil {
		t.Error("unknown column did not fail")
	}
}

// TestShardRangesAligned checks the chunk alignment and degradation rules.
func TestShardRangesAligned(t *testing.T) {
	rs := storage.ShardRanges(1<<20, 4, 1<<16)
	for k, r := range rs {
		if r.Start%(1<<16) != 0 {
			t.Errorf("shard %d starts at %d, not chunk-aligned", k, r.Start)
		}
	}
	if rs[3].End != 1<<20 {
		t.Errorf("last shard ends at %d", rs[3].End)
	}
	// Tiny table: alignment degrades (to >= 64) so multiple shards get rows.
	small := storage.ShardRanges(6000, 2, 1<<16)
	if small[0].Len() == 0 || small[1].Len() == 0 {
		t.Errorf("tiny table did not fan out: %+v", small)
	}
	for k, r := range small {
		if r.Start%64 != 0 {
			t.Errorf("small shard %d start %d not word-aligned", k, r.Start)
		}
	}
	if small[0].End != small[1].Start || small[1].End != 6000 {
		t.Errorf("small ranges do not tile: %+v", small)
	}
}
