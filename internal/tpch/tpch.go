// Package tpch generates the TPC-H-shaped data the paper's experiments run
// over (Section 4), using a deterministic stdlib-only PRNG in place of
// dbgen. Generation is morsel-parallel over the internal/exec pool: the row
// space is carved into fixed shards, each shard draws from its own
// seed-derived PRNG stream, shard buffers concatenate in a fixed order, and
// every column file is encoded and written by an independent task
// (storage.WriteProjectionParallel) — so the output files are byte-identical
// at every worker count. It reproduces the properties the experiments
// exploit:
//
//   - A lineitem projection (RETURNFLAG, SHIPDATE, LINENUM, QUANTITY) sorted
//     by (RETURNFLAG, SHIPDATE, LINENUM). RETURNFLAG has 3 distinct values,
//     SHIPDATE ~2,526 distinct days uniformly spread (so a shipdate < X
//     predicate's selectivity is linear in X), LINENUM has 7 distinct values
//     with TPC-H's triangular frequency (LINENUM < 7 selects ≈96% — the
//     constant the paper holds fixed), QUANTITY is 1..50 uniform.
//     RETURNFLAG and SHIPDATE are RLE-compressed; LINENUM is stored
//     redundantly in uncompressed, RLE and bit-vector encodings (as in the
//     paper); QUANTITY is uncompressed.
//   - An orders projection (CUSTKEY, SHIPDATE) and a customer projection
//     (CUSTKEY, NATIONCODE) with a 10:1 cardinality ratio and uniform
//     foreign keys, for the Section 4.3 join experiment.
//
// Scale 1 corresponds to TPC-H scale 1 (6M lineitem rows); the paper used
// scale 10. All row counts scale linearly.
package tpch

import (
	"fmt"
	"path/filepath"

	"matstore/internal/encoding"
	"matstore/internal/exec"
	"matstore/internal/positions"
	"matstore/internal/storage"
)

// GenVersion identifies the generator's output bytes: bump it whenever the
// generated data changes for a given (scale, seed), so cached datasets
// (internal/bench's marker files) regenerate. Version 2 introduced
// seed-per-shard parallel generation.
const GenVersion = 2

const (
	// ShipdateDays is the number of distinct SHIPDATE values (the TPC-H
	// shipdate domain spans ~2,526 days).
	ShipdateDays = 2526
	// LinenumMax is the largest LINENUM value (1..7).
	LinenumMax = 7
	// QuantityMax is the largest QUANTITY value (1..50).
	QuantityMax = 50
	// Nations is the number of distinct NATIONCODE values.
	Nations = 25

	// LineitemPerScale is lineitem rows at scale 1.
	LineitemPerScale = 6_000_000
	// OrdersPerScale is orders rows at scale 1.
	OrdersPerScale = 1_500_000
	// CustomerPerScale is customer rows at scale 1.
	CustomerPerScale = 150_000

	// LineitemProj, OrdersProj and CustomerProj name the generated
	// projections.
	LineitemProj = "lineitem"
	OrdersProj   = "orders"
	CustomerProj = "customer"
)

// Column names of the generated projections.
const (
	ColRetflag       = "returnflag"
	ColShipdate      = "shipdate"
	ColLinenum       = "linenum"     // uncompressed
	ColLinenumRLE    = "linenum_rle" // RLE copy
	ColLinenumBV     = "linenum_bv"  // bit-vector copy
	ColQuantity      = "quantity"
	ColCustkey       = "custkey"
	ColOrderShipdate = "shipdate"
	ColNationcode    = "nationcode"
)

// Config parameterizes generation.
type Config struct {
	// Scale is the TPC-H scale factor (1.0 = 6M lineitem rows).
	Scale float64
	// Seed makes generation deterministic; different seeds give different
	// data with identical statistics.
	Seed uint64
	// Workers parallelizes shard generation and column-file writing over the
	// internal/exec pool (0 = one per CPU, 1 = serial). Output files are
	// byte-identical at every worker count.
	Workers int
}

// LineitemRows returns the lineitem cardinality at this scale.
func (c Config) LineitemRows() int64 { return int64(float64(LineitemPerScale) * c.Scale) }

// OrdersRows returns the orders cardinality at this scale.
func (c Config) OrdersRows() int64 { return int64(float64(OrdersPerScale) * c.Scale) }

// CustomerRows returns the customer cardinality at this scale.
func (c Config) CustomerRows() int64 { return int64(float64(CustomerPerScale) * c.Scale) }

// rng is a splitmix64 PRNG: tiny, fast, deterministic, stdlib-only.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed + 0x9e3779b97f4a7c15} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int64) int64 {
	return int64(r.next() % uint64(n))
}

// shardSalt derives a shard's private PRNG stream from the generator seed
// and the shard's fixed identity (never its index in a worker-dependent
// carving), so any carving of the row space replays identical bytes.
func shardSalt(seed, table, a, b uint64) uint64 {
	r := newRNG(seed ^ table ^ a*0x9e3779b97f4a7c15 ^ b*0xc4ceb9fe1a85ec53)
	return r.next()
}

// Generate writes all three projections under dir.
func Generate(dir string, cfg Config) error {
	if cfg.Scale <= 0 {
		return fmt.Errorf("tpch: scale must be positive, got %v", cfg.Scale)
	}
	if err := GenerateLineitem(filepath.Join(dir, LineitemProj), cfg); err != nil {
		return err
	}
	if err := GenerateOrders(filepath.Join(dir, OrdersProj), cfg); err != nil {
		return err
	}
	return GenerateCustomer(filepath.Join(dir, CustomerProj), cfg)
}

// colRuns buffers one shard column as (value, count) runs — O(1) per run to
// replay into a ColumnWriter, and compact for the run-heavy sorted columns.
// Run fragmentation at shard boundaries cannot leak into the output bytes:
// ColumnWriter.AppendRun coalesces adjacent equal values itself.
type colRuns struct {
	vals, lens []int64
}

func (c *colRuns) add(v, n int64) {
	if n <= 0 {
		return
	}
	c.vals = append(c.vals, v)
	c.lens = append(c.lens, n)
}

// replay appends the runs to a column writer.
func (c *colRuns) replay(w *storage.ColumnWriter) error {
	for i, v := range c.vals {
		if err := w.AppendRun(v, c.lens[i]); err != nil {
			return err
		}
	}
	return nil
}

// replayClip appends only rows [lo, hi) of the run sequence (row indices
// local to this buffer) — the horizontal-slicing primitive of sharded
// generation. Clipping run boundaries cannot perturb the output bytes:
// AppendRun coalesces adjacent equal values, so a clipped replay is
// indistinguishable from appending the sliced values one by one.
func (c *colRuns) replayClip(w *storage.ColumnWriter, lo, hi int64) error {
	cur := int64(0)
	for i, v := range c.vals {
		n := c.lens[i]
		start, end := cur, cur+n
		cur = end
		if end <= lo {
			continue
		}
		if start >= hi {
			break
		}
		if start < lo {
			start = lo
		}
		if end > hi {
			end = hi
		}
		if err := w.AppendRun(v, end-start); err != nil {
			return err
		}
	}
	return nil
}

// linenumWeights is the TPC-H LINENUM frequency: an order has 1..7 line
// items uniformly, so P(linenum = k) ∝ 8-k. LINENUM < 7 therefore selects
// 27/28 ≈ 96.4% of rows — the paper's fixed 96% predicate.
var linenumWeights = [LinenumMax]int64{7, 6, 5, 4, 3, 2, 1}

// LinenumWeightSum is the total LINENUM frequency weight: P(linenum = k) =
// (8-k)/LinenumWeightSum, so linenum < 7 selects 27/28 of all rows.
const LinenumWeightSum = 28

// lineitemShardDays is the shipdate span of one lineitem generation shard:
// 2526 days split into ~16 shards per RETURNFLAG group, enough morsels for
// any worker count without fragmenting the buffers.
const lineitemShardDays = 158

// liShard is one lineitem generation unit — a (returnflag, day range) slab
// of the sorted row space — with its buffered column runs. quantity is
// buffered raw (one random draw per row).
type liShard struct {
	flag       int64
	day0, day1 int64
	flagRuns   colRuns
	dateRuns   colRuns
	lnRuns     colRuns // shared by the plain, RLE and bit-vector copies
	qty        []int64
}

// GenerateLineitem writes the lineitem projection: rows sorted by
// (RETURNFLAG, SHIPDATE, LINENUM), generated cell-by-cell so sorted columns
// are emitted as runs without a sort pass. Shards generate in parallel from
// seed-per-shard PRNG streams and each column file is written by its own
// task, so the files are byte-identical at every cfg.Workers.
func GenerateLineitem(dir string, cfg Config) error {
	shards, err := genLineitemShards(cfg)
	if err != nil {
		return err
	}
	n := cfg.LineitemRows()
	return writeLineitem(dir, shards, exec.Resolve(cfg.Workers), positions.Range{Start: 0, End: n})
}

// genLineitemShards generates the lineitem row space as (flag, day-range)
// slabs, in parallel from seed-per-shard PRNG streams. Slab order defines
// the global row order.
func genLineitemShards(cfg Config) ([]*liShard, error) {
	n := cfg.LineitemRows()
	// RETURNFLAG shares: A≈25%, N≈50%, R≈25% (encoded 0,1,2).
	flagRows := [3]int64{n / 4, n / 2, n - n/4 - n/2}
	var shards []*liShard
	for flag := int64(0); flag < 3; flag++ {
		for day0 := int64(0); day0 < ShipdateDays; day0 += lineitemShardDays {
			day1 := day0 + lineitemShardDays
			if day1 > ShipdateDays {
				day1 = ShipdateDays
			}
			shards = append(shards, &liShard{flag: flag, day0: day0, day1: day1})
		}
	}
	workers := exec.Resolve(cfg.Workers)
	if err := exec.Run(workers, len(shards), func(i int) error {
		shards[i].generate(cfg, flagRows[shards[i].flag])
		return nil
	}); err != nil {
		return nil, err
	}
	return shards, nil
}

// rows returns the slab's row count.
func (s *liShard) rows() int64 {
	var n int64
	for _, l := range s.flagRuns.lens {
		n += l
	}
	return n
}

// writeLineitem writes the global row range clip of the generated slabs as
// a lineitem projection directory. The full range reproduces the
// single-directory output; a sub-range is byte-identical to row-slicing it
// (the ColumnWriter re-encodes from the slice's first row, exactly as a
// slicing rewrite would).
func writeLineitem(dir string, shards []*liShard, workers int, clip positions.Range) error {
	_, err := storage.WriteProjectionParallel(dir, LineitemProj,
		[]string{ColRetflag, ColShipdate, ColLinenum},
		[]storage.ColumnSpec{
			{Name: ColRetflag, Encoding: encoding.RLE},
			{Name: ColShipdate, Encoding: encoding.RLE},
			{Name: ColLinenum, Encoding: encoding.Plain},
			{Name: ColLinenumRLE, Encoding: encoding.RLE},
			{Name: ColLinenumBV, Encoding: encoding.BitVector},
			{Name: ColQuantity, Encoding: encoding.Plain},
		},
		workers,
		func(col int, w *storage.ColumnWriter) error {
			cursor := int64(0) // global row of the next slab's first row
			for _, s := range shards {
				rows := s.rows()
				slab := positions.Range{Start: cursor, End: cursor + rows}
				cursor += rows
				o := slab.Intersect(clip)
				if o.Empty() {
					continue
				}
				// Slab-local sub-range to emit.
				lo, hi := o.Start-slab.Start, o.End-slab.Start
				var err error
				switch col {
				case 0:
					err = s.flagRuns.replayClip(w, lo, hi)
				case 1:
					err = s.dateRuns.replayClip(w, lo, hi)
				case 2, 3, 4:
					err = s.lnRuns.replayClip(w, lo, hi)
				default:
					for _, q := range s.qty[lo:hi] {
						if err = w.Append(q); err != nil {
							break
						}
					}
				}
				if err != nil {
					return err
				}
			}
			return nil
		})
	return err
}

// generate fills the shard's buffers: rows spread uniformly over the shard's
// days (deterministic proportional allocation against the whole flag group)
// and, within each day, over LINENUM with the triangular weights.
func (s *liShard) generate(cfg Config, flagRows int64) {
	if flagRows <= 0 {
		return
	}
	r := newRNG(cfg.Seed ^ 0x11ea ^ shardSalt(cfg.Seed, 'L', uint64(s.flag), uint64(s.day0)))
	// The flag group's rows allocate to days independently of sharding: day
	// counts depend only on (flagRows, day), so any shard can compute its
	// slice of the allocation locally.
	base := flagRows / ShipdateDays
	rem := flagRows % ShipdateDays
	for day := s.day0; day < s.day1; day++ {
		cnt := base
		if day < rem {
			cnt++
		}
		if cnt == 0 {
			continue
		}
		s.emitDay(r, day, cnt)
	}
}

// emitDay allocates cnt rows across LINENUM values 1..7 by triangular
// weights (rounding remainder distributed by weighted random draws) and
// buffers the runs.
func (s *liShard) emitDay(r *rng, day, cnt int64) {
	var counts [LinenumMax]int64
	var assigned int64
	for l := 0; l < LinenumMax; l++ {
		counts[l] = cnt * linenumWeights[l] / LinenumWeightSum
		assigned += counts[l]
	}
	for assigned < cnt {
		w := r.intn(LinenumWeightSum)
		for l := 0; l < LinenumMax; l++ {
			if w < linenumWeights[l] {
				counts[l]++
				assigned++
				break
			}
			w -= linenumWeights[l]
		}
	}
	s.flagRuns.add(s.flag, cnt)
	s.dateRuns.add(day, cnt)
	for l := 0; l < LinenumMax; l++ {
		s.lnRuns.add(int64(l+1), counts[l])
		for k := int64(0); k < counts[l]; k++ {
			s.qty = append(s.qty, 1+r.intn(QuantityMax))
		}
	}
}

// rowShardSize is the row span of one orders/customer generation shard.
const rowShardSize = 1 << 17

// rowShards carves [0, n) into fixed-size shards (independent of the worker
// count, so shard PRNG streams are carving-stable).
func rowShards(n int64) []int64 {
	var starts []int64
	for s := int64(0); s < n; s += rowShardSize {
		starts = append(starts, s)
	}
	if len(starts) == 0 {
		starts = []int64{0}
	}
	return starts
}

// GenerateOrders writes the orders projection: CUSTKEY uniform over the
// customer key space (so a custkey < X predicate has linear selectivity, as
// Figure 13 requires) and an unsorted SHIPDATE payload column. Row-range
// shards generate in parallel from seed-per-shard streams; the two column
// files are written by independent tasks.
func GenerateOrders(dir string, cfg Config) error {
	custkey, shipdate, err := genOrders(cfg)
	if err != nil {
		return err
	}
	n := cfg.OrdersRows()
	return writeOrders(dir, custkey, shipdate, exec.Resolve(cfg.Workers), positions.Range{Start: 0, End: n})
}

// genOrders generates the orders row space into fixed-size row-shard
// buffers (carving-stable PRNG streams, so content is independent of worker
// count and of how the rows are later sliced).
func genOrders(cfg Config) (custkey, shipdate [][]int64, err error) {
	n := cfg.OrdersRows()
	nCust := cfg.CustomerRows()
	if nCust == 0 {
		return nil, nil, fmt.Errorf("tpch: scale %v yields no customers", cfg.Scale)
	}
	starts := rowShards(n)
	custkey = make([][]int64, len(starts))
	shipdate = make([][]int64, len(starts))
	workers := exec.Resolve(cfg.Workers)
	if err := exec.Run(workers, len(starts), func(i int) error {
		start := starts[i]
		end := start + rowShardSize
		if end > n {
			end = n
		}
		r := newRNG(cfg.Seed ^ 0x0bde ^ shardSalt(cfg.Seed, 'O', uint64(start), 0))
		ck := make([]int64, 0, end-start)
		sd := make([]int64, 0, end-start)
		for p := start; p < end; p++ {
			ck = append(ck, r.intn(nCust))
			sd = append(sd, r.intn(ShipdateDays))
		}
		custkey[i], shipdate[i] = ck, sd
		return nil
	}); err != nil {
		return nil, nil, err
	}
	return custkey, shipdate, nil
}

// writeOrders writes the global row range clip of the generated buffers as
// an orders projection directory.
func writeOrders(dir string, custkey, shipdate [][]int64, workers int, clip positions.Range) error {
	_, err := storage.WriteProjectionParallel(dir, OrdersProj, nil,
		[]storage.ColumnSpec{
			{Name: ColCustkey, Encoding: encoding.Plain},
			{Name: ColOrderShipdate, Encoding: encoding.Plain},
		},
		workers,
		func(col int, w *storage.ColumnWriter) error {
			cols := custkey
			if col == 1 {
				cols = shipdate
			}
			return appendClipped(w, cols, clip)
		})
	return err
}

// appendClipped appends rows [clip.Start, clip.End) of the concatenated
// buffers to a column writer.
func appendClipped(w *storage.ColumnWriter, bufs [][]int64, clip positions.Range) error {
	cursor := int64(0)
	for _, vals := range bufs {
		seg := positions.Range{Start: cursor, End: cursor + int64(len(vals))}
		cursor = seg.End
		o := seg.Intersect(clip)
		if o.Empty() {
			continue
		}
		for _, v := range vals[o.Start-seg.Start : o.End-seg.Start] {
			if err := w.Append(v); err != nil {
				return err
			}
		}
	}
	return nil
}

// GenerateCustomer writes the customer projection: CUSTKEY is the primary
// key (equal to the row position) and NATIONCODE is uniform over 25
// nations.
func GenerateCustomer(dir string, cfg Config) error {
	nation, err := genCustomer(cfg)
	if err != nil {
		return err
	}
	return writeCustomer(dir, cfg.CustomerRows(), nation, exec.Resolve(cfg.Workers))
}

// genCustomer generates the NATIONCODE buffers (CUSTKEY is the row position
// and needs no buffer).
func genCustomer(cfg Config) ([][]int64, error) {
	n := cfg.CustomerRows()
	starts := rowShards(n)
	nation := make([][]int64, len(starts))
	workers := exec.Resolve(cfg.Workers)
	if err := exec.Run(workers, len(starts), func(i int) error {
		start := starts[i]
		end := start + rowShardSize
		if end > n {
			end = n
		}
		r := newRNG(cfg.Seed ^ 0xc057 ^ shardSalt(cfg.Seed, 'C', uint64(start), 0))
		nc := make([]int64, 0, end-start)
		for p := start; p < end; p++ {
			nc = append(nc, r.intn(Nations))
		}
		nation[i] = nc
		return nil
	}); err != nil {
		return nil, err
	}
	return nation, nil
}

// writeCustomer writes the full customer projection (customer is the
// scatter-gather replicated table, so there is no clipped variant).
func writeCustomer(dir string, n int64, nation [][]int64, workers int) error {
	_, err := storage.WriteProjectionParallel(dir, CustomerProj, []string{ColCustkey},
		[]storage.ColumnSpec{
			{Name: ColCustkey, Encoding: encoding.Plain},
			{Name: ColNationcode, Encoding: encoding.Plain},
		},
		workers,
		func(col int, w *storage.ColumnWriter) error {
			if col == 0 {
				for i := int64(0); i < n; i++ {
					if err := w.Append(i); err != nil {
						return err
					}
				}
				return nil
			}
			for _, vals := range nation {
				for _, v := range vals {
					if err := w.Append(v); err != nil {
						return err
					}
				}
			}
			return nil
		})
	return err
}

// LinenumColumn returns the lineitem LINENUM column name for an encoding.
func LinenumColumn(k encoding.Kind) string {
	switch k {
	case encoding.RLE:
		return ColLinenumRLE
	case encoding.BitVector:
		return ColLinenumBV
	default:
		return ColLinenum
	}
}

// ShipdateForSelectivity returns the shipdate constant X such that
// shipdate < X has approximately the given selectivity.
func ShipdateForSelectivity(sel float64) int64 {
	x := int64(sel * ShipdateDays)
	if x < 0 {
		x = 0
	}
	if x > ShipdateDays {
		x = ShipdateDays
	}
	return x
}

// CustkeyForSelectivity returns X such that custkey < X over nCust uniform
// keys has approximately the given selectivity.
func CustkeyForSelectivity(sel float64, nCust int64) int64 {
	x := int64(sel * float64(nCust))
	if x < 0 {
		x = 0
	}
	if x > nCust {
		x = nCust
	}
	return x
}
