// Package tpch generates the TPC-H-shaped data the paper's experiments run
// over (Section 4), using a deterministic stdlib-only PRNG in place of
// dbgen. It reproduces the properties the experiments exploit:
//
//   - A lineitem projection (RETURNFLAG, SHIPDATE, LINENUM, QUANTITY) sorted
//     by (RETURNFLAG, SHIPDATE, LINENUM). RETURNFLAG has 3 distinct values,
//     SHIPDATE ~2,526 distinct days uniformly spread (so a shipdate < X
//     predicate's selectivity is linear in X), LINENUM has 7 distinct values
//     with TPC-H's triangular frequency (LINENUM < 7 selects ≈96% — the
//     constant the paper holds fixed), QUANTITY is 1..50 uniform.
//     RETURNFLAG and SHIPDATE are RLE-compressed; LINENUM is stored
//     redundantly in uncompressed, RLE and bit-vector encodings (as in the
//     paper); QUANTITY is uncompressed.
//   - An orders projection (CUSTKEY, SHIPDATE) and a customer projection
//     (CUSTKEY, NATIONCODE) with a 10:1 cardinality ratio and uniform
//     foreign keys, for the Section 4.3 join experiment.
//
// Scale 1 corresponds to TPC-H scale 1 (6M lineitem rows); the paper used
// scale 10. All row counts scale linearly.
package tpch

import (
	"fmt"
	"path/filepath"

	"matstore/internal/encoding"
	"matstore/internal/storage"
)

const (
	// ShipdateDays is the number of distinct SHIPDATE values (the TPC-H
	// shipdate domain spans ~2,526 days).
	ShipdateDays = 2526
	// LinenumMax is the largest LINENUM value (1..7).
	LinenumMax = 7
	// QuantityMax is the largest QUANTITY value (1..50).
	QuantityMax = 50
	// Nations is the number of distinct NATIONCODE values.
	Nations = 25

	// LineitemPerScale is lineitem rows at scale 1.
	LineitemPerScale = 6_000_000
	// OrdersPerScale is orders rows at scale 1.
	OrdersPerScale = 1_500_000
	// CustomerPerScale is customer rows at scale 1.
	CustomerPerScale = 150_000

	// LineitemProj, OrdersProj and CustomerProj name the generated
	// projections.
	LineitemProj = "lineitem"
	OrdersProj   = "orders"
	CustomerProj = "customer"
)

// Column names of the generated projections.
const (
	ColRetflag       = "returnflag"
	ColShipdate      = "shipdate"
	ColLinenum       = "linenum"     // uncompressed
	ColLinenumRLE    = "linenum_rle" // RLE copy
	ColLinenumBV     = "linenum_bv"  // bit-vector copy
	ColQuantity      = "quantity"
	ColCustkey       = "custkey"
	ColOrderShipdate = "shipdate"
	ColNationcode    = "nationcode"
)

// Config parameterizes generation.
type Config struct {
	// Scale is the TPC-H scale factor (1.0 = 6M lineitem rows).
	Scale float64
	// Seed makes generation deterministic; different seeds give different
	// data with identical statistics.
	Seed uint64
}

// LineitemRows returns the lineitem cardinality at this scale.
func (c Config) LineitemRows() int64 { return int64(float64(LineitemPerScale) * c.Scale) }

// OrdersRows returns the orders cardinality at this scale.
func (c Config) OrdersRows() int64 { return int64(float64(OrdersPerScale) * c.Scale) }

// CustomerRows returns the customer cardinality at this scale.
func (c Config) CustomerRows() int64 { return int64(float64(CustomerPerScale) * c.Scale) }

// rng is a splitmix64 PRNG: tiny, fast, deterministic, stdlib-only.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed + 0x9e3779b97f4a7c15} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int64) int64 {
	return int64(r.next() % uint64(n))
}

// Generate writes all three projections under dir.
func Generate(dir string, cfg Config) error {
	if cfg.Scale <= 0 {
		return fmt.Errorf("tpch: scale must be positive, got %v", cfg.Scale)
	}
	if err := GenerateLineitem(filepath.Join(dir, LineitemProj), cfg); err != nil {
		return err
	}
	if err := GenerateOrders(filepath.Join(dir, OrdersProj), cfg); err != nil {
		return err
	}
	return GenerateCustomer(filepath.Join(dir, CustomerProj), cfg)
}

// linenumWeights is the TPC-H LINENUM frequency: an order has 1..7 line
// items uniformly, so P(linenum = k) ∝ 8-k. LINENUM < 7 therefore selects
// 27/28 ≈ 96.4% of rows — the paper's fixed 96% predicate.
var linenumWeights = [LinenumMax]int64{7, 6, 5, 4, 3, 2, 1}

// LinenumWeightSum is the total LINENUM frequency weight: P(linenum = k) =
// (8-k)/LinenumWeightSum, so linenum < 7 selects 27/28 of all rows.
const LinenumWeightSum = 28

// GenerateLineitem writes the lineitem projection: rows sorted by
// (RETURNFLAG, SHIPDATE, LINENUM), generated cell-by-cell so sorted columns
// are emitted as runs without a sort pass.
func GenerateLineitem(dir string, cfg Config) error {
	n := cfg.LineitemRows()
	pw, err := storage.NewProjectionWriter(dir, LineitemProj,
		[]string{ColRetflag, ColShipdate, ColLinenum},
		[]storage.ColumnSpec{
			{Name: ColRetflag, Encoding: encoding.RLE},
			{Name: ColShipdate, Encoding: encoding.RLE},
			{Name: ColLinenum, Encoding: encoding.Plain},
			{Name: ColLinenumRLE, Encoding: encoding.RLE},
			{Name: ColLinenumBV, Encoding: encoding.BitVector},
			{Name: ColQuantity, Encoding: encoding.Plain},
		})
	if err != nil {
		return err
	}
	r := newRNG(cfg.Seed ^ 0x11ea)

	// RETURNFLAG shares: A≈25%, N≈50%, R≈25% (encoded 0,1,2).
	flagRows := [3]int64{n / 4, n / 2, n - n/4 - n/2}
	for flag := int64(0); flag < 3; flag++ {
		if err := emitFlagGroup(pw, r, flag, flagRows[flag]); err != nil {
			return err
		}
	}
	_, err = pw.Close()
	return err
}

// emitFlagGroup writes one RETURNFLAG run, spreading rows uniformly over
// the shipdate domain and, within each day, over LINENUM with the
// triangular weights.
func emitFlagGroup(pw *storage.ProjectionWriter, r *rng, flag, rows int64) error {
	if rows <= 0 {
		return nil
	}
	// Deterministic proportional allocation of rows to days, with the
	// remainder spread by a rotating offset so no day is systematically
	// favored.
	base := rows / ShipdateDays
	rem := rows % ShipdateDays
	for day := int64(0); day < ShipdateDays; day++ {
		cnt := base
		if day < rem {
			cnt++
		}
		if cnt == 0 {
			continue
		}
		if err := emitDayGroup(pw, r, flag, day, cnt); err != nil {
			return err
		}
	}
	return nil
}

func emitDayGroup(pw *storage.ProjectionWriter, r *rng, flag, day, cnt int64) error {
	// Allocate cnt rows across LINENUM values 1..7 by triangular weights.
	var counts [LinenumMax]int64
	var assigned int64
	for l := 0; l < LinenumMax; l++ {
		counts[l] = cnt * linenumWeights[l] / LinenumWeightSum
		assigned += counts[l]
	}
	// Distribute the rounding remainder randomly (weighted draws).
	for assigned < cnt {
		w := r.intn(LinenumWeightSum)
		for l := 0; l < LinenumMax; l++ {
			if w < linenumWeights[l] {
				counts[l]++
				assigned++
				break
			}
			w -= linenumWeights[l]
		}
	}
	for l := 0; l < LinenumMax; l++ {
		for k := int64(0); k < counts[l]; k++ {
			if err := pw.AppendRow(flag, day, int64(l+1), int64(l+1), int64(l+1), 1+r.intn(QuantityMax)); err != nil {
				return err
			}
		}
	}
	return nil
}

// GenerateOrders writes the orders projection: CUSTKEY uniform over the
// customer key space (so a custkey < X predicate has linear selectivity, as
// Figure 13 requires) and an unsorted SHIPDATE payload column.
func GenerateOrders(dir string, cfg Config) error {
	n := cfg.OrdersRows()
	nCust := cfg.CustomerRows()
	if nCust == 0 {
		return fmt.Errorf("tpch: scale %v yields no customers", cfg.Scale)
	}
	pw, err := storage.NewProjectionWriter(dir, OrdersProj, nil,
		[]storage.ColumnSpec{
			{Name: ColCustkey, Encoding: encoding.Plain},
			{Name: ColOrderShipdate, Encoding: encoding.Plain},
		})
	if err != nil {
		return err
	}
	r := newRNG(cfg.Seed ^ 0x0bde)
	for i := int64(0); i < n; i++ {
		if err := pw.AppendRow(r.intn(nCust), r.intn(ShipdateDays)); err != nil {
			return err
		}
	}
	_, err = pw.Close()
	return err
}

// GenerateCustomer writes the customer projection: CUSTKEY is the primary
// key (equal to the row position) and NATIONCODE is uniform over 25
// nations.
func GenerateCustomer(dir string, cfg Config) error {
	n := cfg.CustomerRows()
	pw, err := storage.NewProjectionWriter(dir, CustomerProj, []string{ColCustkey},
		[]storage.ColumnSpec{
			{Name: ColCustkey, Encoding: encoding.Plain},
			{Name: ColNationcode, Encoding: encoding.Plain},
		})
	if err != nil {
		return err
	}
	r := newRNG(cfg.Seed ^ 0xc057)
	for i := int64(0); i < n; i++ {
		if err := pw.AppendRow(i, r.intn(Nations)); err != nil {
			return err
		}
	}
	_, err = pw.Close()
	return err
}

// LinenumColumn returns the lineitem LINENUM column name for an encoding.
func LinenumColumn(k encoding.Kind) string {
	switch k {
	case encoding.RLE:
		return ColLinenumRLE
	case encoding.BitVector:
		return ColLinenumBV
	default:
		return ColLinenum
	}
}

// ShipdateForSelectivity returns the shipdate constant X such that
// shipdate < X has approximately the given selectivity.
func ShipdateForSelectivity(sel float64) int64 {
	x := int64(sel * ShipdateDays)
	if x < 0 {
		x = 0
	}
	if x > ShipdateDays {
		x = ShipdateDays
	}
	return x
}

// CustkeyForSelectivity returns X such that custkey < X over nCust uniform
// keys has approximately the given selectivity.
func CustkeyForSelectivity(sel float64, nCust int64) int64 {
	x := int64(sel * float64(nCust))
	if x < 0 {
		x = 0
	}
	if x > nCust {
		x = nCust
	}
	return x
}
