package tpch

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"matstore/internal/buffer"
	"matstore/internal/encoding"
	"matstore/internal/storage"
)

func generate(t *testing.T, scale float64) *storage.DB {
	t.Helper()
	dir := t.TempDir()
	if err := Generate(dir, Config{Scale: scale, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	db, err := storage.OpenDB(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func decompress(t *testing.T, p *storage.Projection, col string) []int64 {
	t.Helper()
	c, err := p.Column(col)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := c.Window(c.Extent())
	if err != nil {
		t.Fatal(err)
	}
	return mc.Decompress(nil)
}

func TestCardinalities(t *testing.T) {
	cfg := Config{Scale: 0.01}
	if cfg.LineitemRows() != 60000 || cfg.OrdersRows() != 15000 || cfg.CustomerRows() != 1500 {
		t.Errorf("cardinalities = %d/%d/%d", cfg.LineitemRows(), cfg.OrdersRows(), cfg.CustomerRows())
	}
}

func TestLineitemSortOrderAndDomains(t *testing.T) {
	db := generate(t, 0.003)
	p, err := db.Projection(LineitemProj)
	if err != nil {
		t.Fatal(err)
	}
	flags := decompress(t, p, ColRetflag)
	dates := decompress(t, p, ColShipdate)
	lnums := decompress(t, p, ColLinenum)
	qtys := decompress(t, p, ColQuantity)
	if len(flags) != int(Config{Scale: 0.003}.LineitemRows()) {
		t.Fatalf("rows = %d", len(flags))
	}
	for i := range flags {
		if flags[i] < 0 || flags[i] > 2 {
			t.Fatalf("returnflag %d out of domain", flags[i])
		}
		if dates[i] < 0 || dates[i] >= ShipdateDays {
			t.Fatalf("shipdate %d out of domain", dates[i])
		}
		if lnums[i] < 1 || lnums[i] > LinenumMax {
			t.Fatalf("linenum %d out of domain", lnums[i])
		}
		if qtys[i] < 1 || qtys[i] > QuantityMax {
			t.Fatalf("quantity %d out of domain", qtys[i])
		}
		if i == 0 {
			continue
		}
		// Lexicographic (returnflag, shipdate, linenum) order.
		switch {
		case flags[i] < flags[i-1]:
			t.Fatalf("row %d: returnflag out of order", i)
		case flags[i] == flags[i-1] && dates[i] < dates[i-1]:
			t.Fatalf("row %d: shipdate out of order within flag", i)
		case flags[i] == flags[i-1] && dates[i] == dates[i-1] && lnums[i] < lnums[i-1]:
			t.Fatalf("row %d: linenum out of order within (flag, date)", i)
		}
	}
}

func TestLinenumCopiesIdentical(t *testing.T) {
	db := generate(t, 0.002)
	p, _ := db.Projection(LineitemProj)
	plain := decompress(t, p, ColLinenum)
	rle := decompress(t, p, ColLinenumRLE)
	bv := decompress(t, p, ColLinenumBV)
	for i := range plain {
		if plain[i] != rle[i] || plain[i] != bv[i] {
			t.Fatalf("row %d: linenum copies diverge (%d/%d/%d)", i, plain[i], rle[i], bv[i])
		}
	}
	// Verify encodings really differ on disk.
	for col, want := range map[string]encoding.Kind{
		ColLinenum: encoding.Plain, ColLinenumRLE: encoding.RLE, ColLinenumBV: encoding.BitVector,
	} {
		c, _ := p.Column(col)
		if c.Encoding() != want {
			t.Errorf("%s encoding = %v, want %v", col, c.Encoding(), want)
		}
	}
}

func TestShipdateSelectivityIsLinear(t *testing.T) {
	db := generate(t, 0.005)
	p, _ := db.Projection(LineitemProj)
	dates := decompress(t, p, ColShipdate)
	n := float64(len(dates))
	for _, sel := range []float64{0.25, 0.5, 0.75} {
		x := ShipdateForSelectivity(sel)
		var match float64
		for _, d := range dates {
			if d < x {
				match++
			}
		}
		if got := match / n; math.Abs(got-sel) > 0.02 {
			t.Errorf("shipdate < %d: selectivity %v, want ~%v", x, got, sel)
		}
	}
}

func TestLinenumSelectivity96(t *testing.T) {
	db := generate(t, 0.005)
	p, _ := db.Projection(LineitemProj)
	lnums := decompress(t, p, ColLinenum)
	var match float64
	for _, l := range lnums {
		if l < LinenumMax {
			match++
		}
	}
	got := match / float64(len(lnums))
	want := 1.0 - 1.0/float64(LinenumWeightSum) // 27/28
	if math.Abs(got-want) > 0.01 {
		t.Errorf("linenum < 7 selectivity = %v, want ~%v (the paper's 96%%)", got, want)
	}
}

func TestCustomerIsPrimaryKey(t *testing.T) {
	db := generate(t, 0.01)
	p, _ := db.Projection(CustomerProj)
	keys := decompress(t, p, ColCustkey)
	for i, k := range keys {
		if k != int64(i) {
			t.Fatalf("custkey[%d] = %d, want %d", i, k, i)
		}
	}
	nations := decompress(t, p, ColNationcode)
	seen := map[int64]bool{}
	for _, n := range nations {
		if n < 0 || n >= Nations {
			t.Fatalf("nationcode %d out of domain", n)
		}
		seen[n] = true
	}
	if len(seen) < Nations/2 {
		t.Errorf("only %d distinct nations in sample", len(seen))
	}
}

func TestOrdersForeignKeysInRange(t *testing.T) {
	db := generate(t, 0.01)
	orders, _ := db.Projection(OrdersProj)
	cust, _ := db.Projection(CustomerProj)
	fk := decompress(t, orders, ColCustkey)
	n := cust.TupleCount()
	for _, k := range fk {
		if k < 0 || k >= n {
			t.Fatalf("custkey %d outside customer table [0,%d)", k, n)
		}
	}
	// Uniformity: custkey < n/2 should select about half.
	var half float64
	for _, k := range fk {
		if k < n/2 {
			half++
		}
	}
	if got := half / float64(len(fk)); math.Abs(got-0.5) > 0.03 {
		t.Errorf("custkey uniformity: %v, want ~0.5", got)
	}
}

func TestDeterminism(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()
	cfg := Config{Scale: 0.001, Seed: 42}
	if err := Generate(dir1, cfg); err != nil {
		t.Fatal(err)
	}
	if err := Generate(dir2, cfg); err != nil {
		t.Fatal(err)
	}
	pool := buffer.New(0)
	for _, proj := range []string{LineitemProj, OrdersProj, CustomerProj} {
		p1, err := storage.OpenProjection(filepath.Join(dir1, proj), pool)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := storage.OpenProjection(filepath.Join(dir2, proj), pool)
		if err != nil {
			t.Fatal(err)
		}
		for _, col := range p1.ColumnNames() {
			c1, _ := p1.Column(col)
			c2, _ := p2.Column(col)
			m1, err := c1.Window(c1.Extent())
			if err != nil {
				t.Fatal(err)
			}
			m2, err := c2.Window(c2.Extent())
			if err != nil {
				t.Fatal(err)
			}
			v1 := m1.Decompress(nil)
			v2 := m2.Decompress(nil)
			for i := range v1 {
				if v1[i] != v2[i] {
					t.Fatalf("%s.%s row %d differs across identical seeds", proj, col, i)
				}
			}
		}
		p1.Close()
		p2.Close()
	}
}

// TestParallelGenerationByteIdentical pins the parallel generator's core
// contract: every output file (column files AND meta.json) is byte-for-byte
// identical at every worker count, because shards draw from seed-per-shard
// PRNG streams in a carving-independent order and each column file is the
// deterministic encoding of its own value stream.
func TestParallelGenerationByteIdentical(t *testing.T) {
	dirs := map[int]string{}
	for _, workers := range []int{1, 2, 4, 7} {
		dir := t.TempDir()
		if err := Generate(dir, Config{Scale: 0.002, Seed: 99, Workers: workers}); err != nil {
			t.Fatal(err)
		}
		dirs[workers] = dir
	}
	ref := dirs[1]
	for workers, dir := range dirs {
		if workers == 1 {
			continue
		}
		for _, proj := range []string{LineitemProj, OrdersProj, CustomerProj} {
			refFiles, err := os.ReadDir(filepath.Join(ref, proj))
			if err != nil {
				t.Fatal(err)
			}
			gotFiles, err := os.ReadDir(filepath.Join(dir, proj))
			if err != nil {
				t.Fatal(err)
			}
			if len(refFiles) != len(gotFiles) {
				t.Fatalf("workers=%d %s: %d files, want %d", workers, proj, len(gotFiles), len(refFiles))
			}
			for _, f := range refFiles {
				want, err := os.ReadFile(filepath.Join(ref, proj, f.Name()))
				if err != nil {
					t.Fatal(err)
				}
				got, err := os.ReadFile(filepath.Join(dir, proj, f.Name()))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("workers=%d: %s/%s differs from serial output", workers, proj, f.Name())
				}
			}
		}
	}
}

func TestInvalidScale(t *testing.T) {
	if err := Generate(t.TempDir(), Config{Scale: 0}); err == nil {
		t.Error("zero scale accepted")
	}
	if err := Generate(t.TempDir(), Config{Scale: 1e-6}); err == nil {
		t.Error("scale with zero customers accepted")
	}
}

func TestSelectivityHelpers(t *testing.T) {
	if ShipdateForSelectivity(-1) != 0 || ShipdateForSelectivity(2) != ShipdateDays {
		t.Error("ShipdateForSelectivity not clamped")
	}
	if CustkeyForSelectivity(0.5, 100) != 50 {
		t.Error("CustkeyForSelectivity wrong")
	}
	if CustkeyForSelectivity(5, 100) != 100 {
		t.Error("CustkeyForSelectivity not clamped")
	}
}
