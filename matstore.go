// Package matstore is a column-oriented storage and query execution engine
// that reproduces the system studied in Abadi, Myers, DeWitt and Madden,
// "Materialization Strategies in a Column-Oriented DBMS" (ICDE 2007).
//
// The engine stores C-Store-style projections (column files of 64KB blocks,
// optionally run-length- or bit-vector-encoded), executes selection,
// aggregation and join queries under all four materialization strategies
// the paper evaluates — EM-pipelined, EM-parallel, LM-pipelined,
// LM-parallel — and implements the paper's analytical cost model, which can
// advise the best strategy for a query.
//
// Query execution is morsel-parallel: the position space is partitioned
// into contiguous, chunk-aligned block ranges executed by a worker pool,
// and per-morsel partial results are merged deterministically (row partials
// concatenate in block order; aggregate partials combine through a
// mergeable-state contract), so results are byte-identical at every
// parallelism level. Query.Parallelism picks the worker count: 0 means one
// worker per CPU, 1 forces the paper's serial chunk-at-a-time execution.
//
// Quick start:
//
//	matstore.Generate(dir, 0.01, 42)              // TPC-H-shaped sample data
//	db, _ := matstore.Open(dir)
//	defer db.Close()
//	res, stats, _ := db.Select("lineitem", matstore.Query{
//		Output: []string{"shipdate", "linenum"},
//		Filters: []matstore.Filter{
//			{Col: "shipdate", Pred: matstore.LessThan(400)},
//			{Col: "linenum", Pred: matstore.LessThan(7)},
//		},
//		Parallelism: 0, // morsel-parallel across all CPUs
//	}, matstore.LMParallel)
package matstore

import (
	"errors"
	"sync/atomic"

	"matstore/internal/buffer"
	"matstore/internal/core"
	"matstore/internal/model"
	"matstore/internal/operators"
	"matstore/internal/plan"
	"matstore/internal/pred"
	"matstore/internal/rows"
	"matstore/internal/storage"
	"matstore/internal/tpch"
)

// Re-exported query-description types.
type (
	// Query describes a selection (and optional SUM aggregation); see
	// core.SelectQuery for field documentation.
	Query = core.SelectQuery
	// Filter is one single-column predicate of a WHERE clause.
	Filter = core.Filter
	// JoinQuery describes an equi-join between two projections.
	JoinQuery = core.JoinQuery
	// Strategy is a materialization strategy.
	Strategy = core.Strategy
	// RightStrategy is a join inner-table materialization strategy.
	RightStrategy = operators.RightStrategy
	// Predicate is a SARGable single-column predicate.
	Predicate = pred.Predicate
	// Result is a columnar query result.
	Result = rows.Result
	// Stats describes one query execution.
	Stats = core.Stats
	// JoinStats describes one join execution.
	JoinStats = core.JoinStats
	// Cost is an analytical-model cost prediction (µs, CPU and I/O).
	Cost = model.Cost
	// Constants are the analytical model's machine constants (Table 2).
	Constants = model.Constants
	// AggFunc is an aggregate function for Query.Agg.
	AggFunc = operators.AggFunc
)

// Aggregate functions for Query.Agg (the zero value is Sum).
const (
	Sum   = operators.AggSum
	Count = operators.AggCount
	Avg   = operators.AggAvg
	Min   = operators.AggMin
	Max   = operators.AggMax
)

// ParseAggFunc converts a string such as "sum" to an AggFunc.
func ParseAggFunc(s string) (AggFunc, error) { return operators.ParseAggFunc(s) }

// Materialization strategies (Section 3.5 of the paper).
const (
	EMPipelined = core.EMPipelined
	EMParallel  = core.EMParallel
	LMPipelined = core.LMPipelined
	LMParallel  = core.LMParallel
)

// Join inner-table strategies (Section 4.3).
const (
	RightMaterialized = operators.RightMaterialized
	RightMultiColumn  = operators.RightMultiColumn
	RightSingleColumn = operators.RightSingleColumn
)

// Strategies lists all four materialization strategies.
var Strategies = core.Strategies

// Predicate constructors.
var (
	// MatchAll accepts every value.
	MatchAll = pred.MatchAll
	// LessThan returns v < a.
	LessThan = pred.LessThan
	// AtMost returns v <= a.
	AtMost = pred.AtMost
	// Equals returns v == a.
	Equals = pred.Equals
	// NotEquals returns v != a.
	NotEquals = pred.NotEquals
	// AtLeast returns v >= a.
	AtLeast = pred.AtLeast
	// GreaterThan returns v > a.
	GreaterThan = pred.GreaterThan
	// InRange returns a <= v < b.
	InRange = pred.InRange
)

// ParseStrategy converts a string such as "lm-parallel" to a Strategy.
func ParseStrategy(s string) (Strategy, error) { return core.ParseStrategy(s) }

// ParseRightStrategy converts a string such as "right-materialized" to a
// join inner-table RightStrategy.
func ParseRightStrategy(s string) (RightStrategy, error) { return operators.ParseRightStrategy(s) }

// PaperConstants returns the Table 2 constants from the paper's hardware.
func PaperConstants() Constants { return model.Paper }

// Calibrate measures the analytical-model constants on this machine
// bottom-up, by timing the small code segments each constant stands for.
// FitConstants is the complementary top-down refit from observed whole-query
// executions.
func Calibrate() Constants { return model.MeasureConstants() }

// Observation is one (model feature vector, observed node time) pair
// extracted from an explained execution; see Explanation.Observations.
type Observation = model.Observation

// CalibrationReport describes a FitConstants run: constants before/after and
// the RMS modeled-vs-observed error under each.
type CalibrationReport = model.CalibrationReport

// FitConstants refits the model's CPU constants to observed per-node
// execution times by least squares (ridge-regularized toward prior). The
// returned constants never fit the observations worse than the prior; feed
// them back with DB.SetConstants so the advisors, EXPLAIN annotations and
// cost-based admission grants run on constants measured on this machine
// rather than the paper's 2007 hardware.
func FitConstants(obs []Observation, prior Constants) (Constants, CalibrationReport) {
	return model.Calibrate(obs, prior)
}

// Generate writes TPC-H-shaped sample projections (lineitem, orders,
// customer) under dir at the given scale factor (1.0 ≈ 6M lineitem rows;
// the paper used 10.0). Generation is morsel-parallel across all CPUs;
// output bytes are identical at every worker count.
func Generate(dir string, scale float64, seed uint64) error {
	return tpch.Generate(dir, tpch.Config{Scale: scale, Seed: seed})
}

// Options tunes a DB handle.
type Options struct {
	// PoolBytes bounds the buffer pool (0 = unbounded).
	PoolBytes int64
	// Exec tunes the executor (chunk size, ablation switches).
	Exec core.Options
}

// DB is an open database: a directory of projections served through a
// shared buffer pool.
type DB struct {
	inner *storage.DB
	exec  *core.Executor
	// consts are the analytical-model constants every advisor, EXPLAIN
	// annotation and cost estimate on this handle uses (atomic so a
	// calibration pass can swap them while queries run).
	consts atomic.Pointer[model.Constants]
	// orphansSwept counts stale spill temp files removed at Open.
	orphansSwept int
}

// Open opens every projection under dir.
func Open(dir string, opts ...Options) (*DB, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	inner, err := storage.OpenDB(dir, o.PoolBytes)
	if err != nil {
		return nil, err
	}
	db := &DB{inner: inner, exec: core.NewExecutor(inner.Pool(), o.Exec)}
	paper := model.Paper
	db.consts.Store(&paper)
	// Sweep spill temp files orphaned by a previous crash — their lifetime is
	// one query run, so anything present at open is garbage. Best effort: a
	// sweep failure (e.g. read-only media) must not block opening.
	db.orphansSwept, _ = operators.SweepSpillDir(operators.SpillDir(dir))
	return db, nil
}

// SpillDir returns the directory spill-mode joins write their temp files
// under (a dot-directory beside the projection directories).
func (db *DB) SpillDir() string { return operators.SpillDir(db.inner.Dir()) }

// OrphanedSpillFiles reports how many stale spill temp files Open removed —
// leftovers of a crash mid-spill in a previous process.
func (db *DB) OrphanedSpillFiles() int { return db.orphansSwept }

// Constants returns the model constants this handle currently runs on (the
// paper's Table 2 values until SetConstants installs calibrated ones).
func (db *DB) Constants() Constants { return *db.consts.Load() }

// SetConstants installs new model constants, e.g. the FitConstants output:
// Advise, AdviseParallel, AdviseJoin, Explain, ExplainJoin and the cost
// estimators all use them from the next call on. Safe under concurrent
// queries.
func (db *DB) SetConstants(c Constants) { db.consts.Store(&c) }

// Close releases all column files.
func (db *DB) Close() error { return db.inner.Close() }

// Exec exposes the underlying executor for in-module serving layers
// (internal/service builds and runs plans directly so it can cache them);
// the returned executor shares this DB's buffer pool and options.
func (db *DB) Exec() *core.Executor { return db.exec }

// Storage exposes the underlying projection store for in-module serving
// layers.
func (db *DB) Storage() *storage.DB { return db.inner }

// Projections lists the open projection names.
func (db *DB) Projections() []string { return db.inner.ProjectionNames() }

// PoolStats returns cumulative buffer-pool counters.
func (db *DB) PoolStats() buffer.Stats { return db.inner.Pool().Stats() }

// Select runs a selection/aggregation query against a projection under the
// chosen materialization strategy.
func (db *DB) Select(projection string, q Query, s Strategy) (*Result, *Stats, error) {
	p, err := db.inner.Projection(projection)
	if err != nil {
		return nil, nil, err
	}
	return db.exec.Select(p, q, s)
}

// Join runs an equi-join: left is the outer (probing) projection, right the
// inner (hash-built) one, rs the inner-table materialization strategy.
func (db *DB) Join(left, right string, q JoinQuery, rs RightStrategy) (*Result, *JoinStats, error) {
	lp, err := db.inner.Projection(left)
	if err != nil {
		return nil, nil, err
	}
	rp, err := db.inner.Projection(right)
	if err != nil {
		return nil, nil, err
	}
	if q.SpillBudgetBytes > 0 {
		pl, spill, err := db.spillJoinPlan(lp, rp, right, q, rs)
		if err != nil {
			return nil, nil, err
		}
		return db.exec.RunJoinPlanWith(pl, q.Parallelism, plan.RunOptions{Spill: spill})
	}
	return db.exec.Join(lp, rp, q, rs)
}

// spillJoinPlan builds the join plan plus the Grace spill configuration for
// a JoinQuery with SpillBudgetBytes set: the build side keeps at most the
// budget resident and writes the rest to per-partition temp files under the
// database's spill directory.
func (db *DB) spillJoinPlan(lp, rp *storage.Projection, right string, q JoinQuery, rs RightStrategy) (*plan.Plan, *operators.SpillConfig, error) {
	if db.exec.Opt.SerialJoinBuild {
		return nil, nil, errors.New("matstore: SpillBudgetBytes requires the radix build (Options.SerialJoinBuild is set)")
	}
	pl, err := db.exec.BuildJoinPlan(lp, rp, q, rs)
	if err != nil {
		return nil, nil, err
	}
	est, err := db.EstimateJoinMemory(right, q, rs)
	if err != nil {
		return nil, nil, err
	}
	return pl, &operators.SpillConfig{
		BudgetBytes: q.SpillBudgetBytes,
		EstBytes:    est,
		Dir:         db.SpillDir(),
	}, nil
}
