package matstore_test

import (
	"os"
	"reflect"
	"sync"
	"testing"

	"matstore"
)

var (
	apiOnce sync.Once
	apiDir  string
	apiErr  error
)

func apiData(t *testing.T) string {
	t.Helper()
	apiOnce.Do(func() {
		apiDir, apiErr = os.MkdirTemp("", "matstore-api-test")
		if apiErr != nil {
			return
		}
		apiErr = matstore.Generate(apiDir, 0.002, 5)
	})
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	return apiDir
}

func TestMain(m *testing.M) {
	code := m.Run()
	if apiDir != "" {
		os.RemoveAll(apiDir)
	}
	benchCleanup()
	os.Exit(code)
}

func open(t *testing.T, opts ...matstore.Options) *matstore.DB {
	t.Helper()
	db, err := matstore.Open(apiData(t), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestOpenAndList(t *testing.T) {
	db := open(t)
	want := []string{"customer", "lineitem", "orders"}
	if got := db.Projections(); !reflect.DeepEqual(got, want) {
		t.Errorf("Projections = %v, want %v", got, want)
	}
}

func TestPublicSelectAllStrategies(t *testing.T) {
	db := open(t)
	q := matstore.Query{
		Output: []string{"shipdate", "linenum"},
		Filters: []matstore.Filter{
			{Col: "shipdate", Pred: matstore.LessThan(1200)},
			{Col: "linenum", Pred: matstore.LessThan(7)},
		},
	}
	var firstRows int
	var firstSum int64
	for i, s := range matstore.Strategies {
		res, stats, err := db.Select("lineitem", q, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.NumRows() == 0 {
			t.Fatalf("%v: empty result", s)
		}
		if i == 0 {
			firstRows, firstSum = res.NumRows(), stats.OutputChecksum
		} else if res.NumRows() != firstRows || stats.OutputChecksum != firstSum {
			t.Errorf("%v: rows/checksum %d/%d differ from %d/%d",
				s, res.NumRows(), stats.OutputChecksum, firstRows, firstSum)
		}
	}
}

func TestPublicAggregation(t *testing.T) {
	db := open(t)
	q := matstore.Query{
		Filters: []matstore.Filter{{Col: "returnflag", Pred: matstore.Equals(1)}},
		GroupBy: "returnflag",
		AggCol:  "quantity",
	}
	res, stats, err := db.Select("lineitem", q, matstore.LMParallel)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || stats.Groups != 1 {
		t.Errorf("rows=%d groups=%d, want 1", res.NumRows(), stats.Groups)
	}
	if res.Columns[1] != "sum(quantity)" {
		t.Errorf("agg column name = %q", res.Columns[1])
	}
}

func TestPublicAggregateFunctions(t *testing.T) {
	db := open(t)
	for _, tc := range []struct {
		fn   matstore.AggFunc
		name string
	}{
		{matstore.Sum, "sum(quantity)"},
		{matstore.Count, "count(quantity)"},
		{matstore.Avg, "avg(quantity)"},
		{matstore.Min, "min(quantity)"},
		{matstore.Max, "max(quantity)"},
	} {
		q := matstore.Query{
			Filters: []matstore.Filter{{Col: "returnflag", Pred: matstore.MatchAll}},
			GroupBy: "returnflag",
			AggCol:  "quantity",
			Agg:     tc.fn,
		}
		res, _, err := db.Select("lineitem", q, matstore.LMParallel)
		if err != nil {
			t.Fatalf("%v: %v", tc.fn, err)
		}
		if res.Columns[1] != tc.name {
			t.Errorf("%v: column %q, want %q", tc.fn, res.Columns[1], tc.name)
		}
		if res.NumRows() != 3 {
			t.Errorf("%v: %d groups", tc.fn, res.NumRows())
		}
	}
	// Quantity is 1..50 uniform: min 1, max 50 in every group at this size.
	q := matstore.Query{
		Filters: []matstore.Filter{{Col: "returnflag", Pred: matstore.MatchAll}},
		GroupBy: "returnflag", AggCol: "quantity", Agg: matstore.Max,
	}
	res, _, _ := db.Select("lineitem", q, matstore.EMParallel)
	v, _ := res.Col("max(quantity)")
	for _, x := range v {
		if x != 50 {
			t.Errorf("max(quantity) = %d, want 50", x)
		}
	}
	if _, err := matstore.ParseAggFunc("median"); err == nil {
		t.Error("unknown aggregate accepted")
	}
}

// TestIntroThreePredicateExample runs the paper's introductory example: three
// selection predicates σ1, σ2, σ3 over three columns of one relation, σ1
// most selective — the scenario motivating late materialization.
func TestIntroThreePredicateExample(t *testing.T) {
	db := open(t)
	q := matstore.Query{
		Output: []string{"shipdate", "linenum", "quantity"},
		Filters: []matstore.Filter{
			{Col: "shipdate", Pred: matstore.LessThan(250)}, // σ1: ~10%
			{Col: "quantity", Pred: matstore.LessThan(40)},  // σ2: ~78%
			{Col: "linenum", Pred: matstore.LessThan(7)},    // σ3: ~96%
		},
	}
	var first *matstore.Result
	var firstChecksum int64
	for i, s := range matstore.Strategies {
		res, stats, err := db.Select("lineitem", q, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if i == 0 {
			first, firstChecksum = res, stats.OutputChecksum
			if res.NumRows() == 0 {
				t.Fatal("intro example returned nothing")
			}
		} else if res.NumRows() != first.NumRows() || stats.OutputChecksum != firstChecksum {
			t.Errorf("%v: disagrees on the three-predicate query", s)
		}
		// LM constructs only the surviving tuples; EM strategies construct
		// intermediates at every step.
		if s == matstore.LMParallel && stats.TuplesConstructed != stats.TuplesOut {
			t.Errorf("LM-parallel constructed %d tuples for %d outputs",
				stats.TuplesConstructed, stats.TuplesOut)
		}
	}
}

func TestPublicJoin(t *testing.T) {
	db := open(t)
	q := matstore.JoinQuery{
		LeftKey:     "custkey",
		LeftPred:    matstore.MatchAll,
		LeftOutput:  []string{"shipdate"},
		RightKey:    "custkey",
		RightOutput: []string{"nationcode"},
	}
	var want int
	for i, rs := range []matstore.RightStrategy{
		matstore.RightMaterialized, matstore.RightMultiColumn, matstore.RightSingleColumn,
	} {
		res, stats, err := db.Join("orders", "customer", q, rs)
		if err != nil {
			t.Fatalf("%v: %v", rs, err)
		}
		if i == 0 {
			want = res.NumRows()
			if want == 0 {
				t.Fatal("join produced nothing")
			}
		} else if res.NumRows() != want {
			t.Errorf("%v: %d rows, want %d", rs, res.NumRows(), want)
		}
		if stats.TuplesOut != int64(want) {
			t.Errorf("%v: TuplesOut = %d", rs, stats.TuplesOut)
		}
	}
}

func TestAdvise(t *testing.T) {
	db := open(t)
	// Aggregation query: the paper's heuristic says LM should win.
	q := matstore.Query{
		Filters: []matstore.Filter{
			{Col: "shipdate", Pred: matstore.LessThan(1200)},
			{Col: "linenum_rle", Pred: matstore.LessThan(7)},
		},
		GroupBy: "shipdate",
		AggCol:  "linenum_rle",
	}
	adv, err := db.Advise("lineitem", q)
	if err != nil {
		t.Fatal(err)
	}
	if len(adv.Costs) != 4 {
		t.Fatalf("Costs has %d entries", len(adv.Costs))
	}
	if adv.Best != matstore.LMParallel && adv.Best != matstore.LMPipelined {
		t.Errorf("Advise(aggregation) = %v, want an LM strategy (paper heuristic)", adv.Best)
	}
	for s, c := range adv.Costs {
		if c.Total() <= 0 {
			t.Errorf("%v predicted cost %v", s, c)
		}
	}
	best := adv.Costs[adv.Best].Total()
	for s, c := range adv.Costs {
		if c.Total() < best {
			t.Errorf("Best=%v but %v is cheaper", adv.Best, s)
		}
	}
	// Advise without filters is rejected.
	if _, err := db.Advise("lineitem", matstore.Query{Output: []string{"shipdate"}}); err == nil {
		t.Error("filterless Advise accepted")
	}
}

func TestAdviseColdChargesIO(t *testing.T) {
	db := open(t)
	q := matstore.Query{
		Output: []string{"shipdate", "linenum"},
		Filters: []matstore.Filter{
			{Col: "shipdate", Pred: matstore.LessThan(1200)},
			{Col: "linenum", Pred: matstore.LessThan(7)},
		},
	}
	hot, err := db.AdviseWith(matstore.PaperConstants(), "lineitem", q, true)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := db.AdviseWith(matstore.PaperConstants(), "lineitem", q, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range matstore.Strategies {
		if cold.Costs[s].IO <= hot.Costs[s].IO {
			t.Errorf("%v: cold IO %v not above hot IO %v", s, cold.Costs[s].IO, hot.Costs[s].IO)
		}
	}
}

func TestPoolBounded(t *testing.T) {
	db := open(t, matstore.Options{PoolBytes: 1 << 20})
	q := matstore.Query{Output: []string{"quantity"}}
	if _, _, err := db.Select("lineitem", q, matstore.EMParallel); err != nil {
		t.Fatal(err)
	}
	if db.PoolStats().Reads == 0 {
		t.Error("no reads recorded")
	}
}

func TestParseStrategyPublic(t *testing.T) {
	s, err := matstore.ParseStrategy("lm-parallel")
	if err != nil || s != matstore.LMParallel {
		t.Errorf("ParseStrategy = %v, %v", s, err)
	}
}

func TestCalibratePublic(t *testing.T) {
	c := matstore.Calibrate()
	if c.FC <= 0 || c.TICTUP <= 0 {
		t.Errorf("Calibrate = %+v", c)
	}
	if matstore.PaperConstants().SEEK != 2500 {
		t.Error("paper constants wrong")
	}
}

func TestOpenMissingDir(t *testing.T) {
	if _, err := matstore.Open("/no/such/dir"); err == nil {
		t.Error("Open of missing dir succeeded")
	}
}
