package matstore

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseWhere parses a comma-separated predicate list such as
// "shipdate<400,linenum<7" into filters — the WHERE syntax shared by the
// csquery CLI and the csserve HTTP front-end. Supported operators:
// <, <=, =, !=, >=, >.
func ParseWhere(s string) ([]Filter, error) {
	if s == "" {
		return nil, nil
	}
	var out []Filter
	for _, part := range strings.Split(s, ",") {
		f, err := ParsePredicateExpr(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// ParsePredicateExpr parses one "col<op>value" predicate expression.
func ParsePredicateExpr(s string) (Filter, error) {
	// Two-character operators first, so "<=" does not parse as "<".
	for _, op := range []string{"<=", ">=", "!=", "<", ">", "="} {
		i := strings.Index(s, op)
		if i <= 0 {
			continue
		}
		col := strings.TrimSpace(s[:i])
		val, err := strconv.ParseInt(strings.TrimSpace(s[i+len(op):]), 10, 64)
		if err != nil {
			return Filter{}, fmt.Errorf("predicate %q: %v", s, err)
		}
		var p Predicate
		switch op {
		case "<":
			p = LessThan(val)
		case "<=":
			p = AtMost(val)
		case "=":
			p = Equals(val)
		case "!=":
			p = NotEquals(val)
		case ">=":
			p = AtLeast(val)
		case ">":
			p = GreaterThan(val)
		}
		return Filter{Col: col, Pred: p}, nil
	}
	return Filter{}, fmt.Errorf("cannot parse predicate %q", s)
}
