package matstore_test

import (
	"reflect"
	"testing"

	"matstore"
)

func TestParsePredicateExpr(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want matstore.Filter
	}{
		{"shipdate<400", matstore.Filter{Col: "shipdate", Pred: matstore.LessThan(400)}},
		{"linenum<=7", matstore.Filter{Col: "linenum", Pred: matstore.AtMost(7)}},
		{"flag=2", matstore.Filter{Col: "flag", Pred: matstore.Equals(2)}},
		{"flag!=2", matstore.Filter{Col: "flag", Pred: matstore.NotEquals(2)}},
		{"qty>=10", matstore.Filter{Col: "qty", Pred: matstore.AtLeast(10)}},
		{"qty>10", matstore.Filter{Col: "qty", Pred: matstore.GreaterThan(10)}},
		{" qty > -5 ", matstore.Filter{Col: "qty", Pred: matstore.GreaterThan(-5)}},
	} {
		got, err := matstore.ParsePredicateExpr(tc.in)
		if err != nil {
			t.Errorf("ParsePredicateExpr(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParsePredicateExpr(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestParsePredicateExprErrors(t *testing.T) {
	for _, in := range []string{"", "shipdate", "<5", "shipdate<abc", "shipdate~5"} {
		if _, err := matstore.ParsePredicateExpr(in); err == nil {
			t.Errorf("ParsePredicateExpr(%q) accepted", in)
		}
	}
}

func TestParseWhere(t *testing.T) {
	got, err := matstore.ParseWhere("a<1,b>=2")
	if err != nil {
		t.Fatal(err)
	}
	want := []matstore.Filter{
		{Col: "a", Pred: matstore.LessThan(1)},
		{Col: "b", Pred: matstore.AtLeast(2)},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ParseWhere = %+v", got)
	}
	if got, err := matstore.ParseWhere(""); err != nil || got != nil {
		t.Errorf("empty where = %v, %v", got, err)
	}
	if _, err := matstore.ParseWhere("a<1,junk"); err == nil {
		t.Error("junk clause accepted")
	}
}
