package matstore_test

import (
	"os"
	"path/filepath"
	"testing"

	"matstore"
)

// TestOpenSweepsOrphanedSpillFiles pins the crash-recovery satellite: spill
// temp files have the lifetime of one query run, so a fresh Open removes any
// leftovers from a crashed predecessor — and reports the count — while
// leaving foreign files in the spill directory alone.
func TestOpenSweepsOrphanedSpillFiles(t *testing.T) {
	dir := t.TempDir()
	if err := matstore.Generate(dir, 0.002, 7); err != nil {
		t.Fatal(err)
	}
	spillDir := filepath.Join(dir, ".spill")
	if err := os.MkdirAll(spillDir, 0o755); err != nil {
		t.Fatal(err)
	}
	orphans := []string{
		filepath.Join(spillDir, "spill-part-123.tmp"),
		filepath.Join(spillDir, "spill-demote-456.tmp"),
	}
	for _, p := range orphans {
		if err := os.WriteFile(p, []byte("stale"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	foreign := filepath.Join(spillDir, "keep.txt")
	if err := os.WriteFile(foreign, []byte("not ours"), 0o644); err != nil {
		t.Fatal(err)
	}

	db, err := matstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if got := db.OrphanedSpillFiles(); got != len(orphans) {
		t.Errorf("OrphanedSpillFiles = %d, want %d", got, len(orphans))
	}
	if db.SpillDir() != spillDir {
		t.Errorf("SpillDir = %q, want %q", db.SpillDir(), spillDir)
	}
	for _, p := range orphans {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("orphan %s survived Open", p)
		}
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Errorf("foreign file removed by sweep: %v", err)
	}

	// A second open over the now-clean directory sweeps nothing.
	db2, err := matstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.OrphanedSpillFiles(); got != 0 {
		t.Errorf("second Open swept %d files, want 0", got)
	}
}

// TestEstimateJoinMemoryFromCatalog checks the public estimator wires catalog
// statistics into the memory model: estimates are positive, ordered
// single-column <= multi-column (hash entries only vs retained blocks), and
// the materialized strategy pays for its dense payload arrays.
func TestEstimateJoinMemoryFromCatalog(t *testing.T) {
	db := open(t)
	q := matstore.JoinQuery{
		LeftKey:     "custkey",
		LeftPred:    matstore.MatchAll,
		LeftOutput:  []string{"shipdate"},
		RightKey:    "custkey",
		RightOutput: []string{"nationcode"},
	}
	est := make(map[matstore.RightStrategy]int64)
	for _, rs := range matstore.JoinStrategies {
		n, err := db.EstimateJoinMemory("customer", q, rs)
		if err != nil {
			t.Fatal(err)
		}
		if n <= 0 {
			t.Errorf("%v: estimate %d, want > 0", rs, n)
		}
		est[rs] = n
	}
	if est[matstore.RightSingleColumn] > est[matstore.RightMultiColumn] {
		t.Errorf("single-column %d > multi-column %d", est[matstore.RightSingleColumn], est[matstore.RightMultiColumn])
	}
	if est[matstore.RightMaterialized] <= est[matstore.RightSingleColumn] {
		t.Errorf("materialized %d should exceed single-column %d (dense arrays)",
			est[matstore.RightMaterialized], est[matstore.RightSingleColumn])
	}
	if _, err := db.EstimateJoinMemory("nope", q, matstore.RightMaterialized); err == nil {
		t.Error("unknown projection accepted")
	}
}
